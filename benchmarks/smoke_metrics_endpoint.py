"""End-to-end observability smoke: serve, query, scrape, trace.

Boots a real :class:`~repro.server.transport.ReproServer` with two
cluster workers, the metrics exporter on an ephemeral port, and
``trace_sample=1.0``; runs one query over TCP; then asserts the whole
PR-6 acceptance path:

* ``/metrics`` (Prometheus text) exposes the serving counters —
  ``repro_queries_served_total``, per-family latency quantiles,
  coalesce rate, scheduler queue depth, and (process backend only)
  per-worker queue depths;
* ``/traces`` returns the query's stitched trace: transport →
  scheduler → (cluster_dispatch → worker, process backend) → engine,
  with the engine span carrying >= 3 kernel phase timings;
* the shell ``trace`` command over the *same* TCP connection lists
  that trace and renders it by id.

The PR-7 surface rides the same boot: ``/readyz`` reports ready with
per-worker liveness, ``/history.json`` returns collector points with
the configured SLO attached, and ``/dashboard`` renders the full
stdlib-only page (no scripts, no external fetches) — asserted under
both start methods.  ``--history-output FILE`` saves the history
document as a CI artifact.

Honours ``REPRO_MP_START`` (`""`/`fork`/`spawn`) like the cluster
benchmarks, so CI exercises both start methods.  Exit code 0 on PASS.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
import urllib.request

from repro.api import QuerySpec
from repro.server.client import ReproClient
from repro.server.transport import ReproServer

#: Span names every stitched trace must contain, per backend.
THREAD_SPANS = {"transport", "scheduler", "engine"}
PROCESS_SPANS = THREAD_SPANS | {"cluster_dispatch", "worker"}
MIN_PHASES = 3


def _http_json(base: str, path: str) -> dict:
    with urllib.request.urlopen(base + path, timeout=10.0) as response:
        return json.loads(response.read().decode("utf-8"))


def _http_text(base: str, path: str) -> str:
    with urllib.request.urlopen(base + path, timeout=10.0) as response:
        return response.read().decode("utf-8")


def check_prometheus(text: str, process_backend: bool) -> None:
    required = [
        "repro_queries_served_total",
        "repro_family_latency_ms",
        "repro_server_coalesce_rate",
        "repro_server_queue_depth",
        "repro_traces_recorded_total",
    ]
    if process_backend:
        required.append("repro_cluster_worker_queue_depth")
    missing = [name for name in required if name not in text]
    assert not missing, f"/metrics missing series: {missing}"
    # Quantile labels on the family summary, not just the series name.
    assert 'quantile="0.5"' in text and 'quantile="0.95"' in text, (
        "family latency summary lacks p50/p95 quantile labels"
    )


#: Substrings every dashboard render must contain, and markup it must
#: not: the page works airgapped, with zero scripts or external fetches.
DASHBOARD_REQUIRED = (
    "<!DOCTYPE html>",
    "<title>repro dashboard</title>",
    '<meta http-equiv="refresh"',
    'id="queues"',
)
DASHBOARD_FORBIDDEN = ("<script", "<link", "http://", "https://")


def check_dashboard(html: str) -> None:
    missing = [needle for needle in DASHBOARD_REQUIRED if needle not in html]
    assert not missing, f"/dashboard missing markup: {missing}"
    lowered = html.lower()
    present = [tag for tag in DASHBOARD_FORBIDDEN if tag in lowered]
    assert not present, f"/dashboard has external/script markup: {present}"


def check_history(doc: dict, process_backend: bool) -> None:
    points = doc.get("points", [])
    assert points, f"history document has no points: {doc}"
    newest = points[-1]
    for key in ("t", "dt", "qps", "error_rate", "queue_depth"):
        assert key in newest, f"history point lacks {key!r}: {newest}"
    assert doc.get("slo"), f"configured SLO absent from document: {doc}"
    status = doc.get("slo_status")
    assert status and status["ok"], f"lenient smoke SLO breached: {status}"
    assert doc.get("breach_count") == 0, doc
    if process_backend:
        # Dispatch meters depth per worker actually used; one query
        # touches at least one of them.
        ticked = [p for p in points if p.get("workers")]
        assert ticked, "no per-worker queue depths in any history point"


def check_readyz(doc: dict, workers: int, process_backend: bool) -> None:
    assert doc.get("ready") is True, f"/readyz not ready: {doc}"
    assert doc.get("reasons") == [], doc
    if process_backend:
        liveness = doc.get("workers", {})
        assert len(liveness) == workers and all(liveness.values()), doc


def check_trace(trace: dict, process_backend: bool) -> None:
    spans = trace.get("spans", [])
    names = {span["name"] for span in spans}
    expected = PROCESS_SPANS if process_backend else THREAD_SPANS
    assert expected <= names, (
        f"stitched trace spans {sorted(names)} missing "
        f"{sorted(expected - names)}"
    )
    engine_spans = [span for span in spans if span["name"] == "engine"]
    phases = {
        phase for span in engine_spans for phase in span.get("phases", {})
    }
    assert len(phases) >= MIN_PHASES, (
        f"engine span has {sorted(phases)}: want >= {MIN_PHASES} "
        "kernel phases"
    )


async def main(history_output: str = "") -> int:
    workers = 2
    server = ReproServer(
        workers=workers,
        metrics_port=0,
        trace_sample=1.0,
        batch_window_ms=0.0,
        # Lenient SLO: the smoke asserts the machinery reports *ok*,
        # not that CI hardware meets a production latency target.
        slo="p95_ms=60000,err_rate=0.99,window_s=60",
        history_interval=0.2,
    )
    await server.start(tcp=("127.0.0.1", 0))
    backend = getattr(server.shards, "backend", "thread")
    process_backend = backend == "process"
    try:
        assert server.metrics_address is not None
        mhost, mport = server.metrics_address
        base = f"http://{mhost}:{mport}"
        host, port = server.tcp_address

        client = await ReproClient.connect(host, port=port)
        try:
            result = await client.execute(
                QuerySpec(graph="email", k=5, gamma=3)
            )
            assert result.communities, "query returned no communities"

            # Traces finalise before the response bytes leave the
            # server, so the scrape after the reply is race-free.
            listing = _http_json(base, "/traces?limit=5")["traces"]
            assert listing, "no traces retained after a traced query"
            trace = _http_json(base, f"/traces/{listing[0]['trace_id']}")
            check_trace(trace, process_backend)

            assert _http_text(base, "/healthz").strip() == "ok"
            check_prometheus(_http_text(base, "/metrics"), process_backend)
            snapshot = _http_json(base, "/metrics.json")
            assert snapshot["queries_served"] >= 1, snapshot
            assert snapshot["traces"]["traces_recorded"] >= 1, snapshot

            # Shell surface over the same connection: list + render.
            lines = await client.request("trace limit=5")
            assert any(
                trace["trace_id"] in line for line in lines
            ), f"shell 'trace' listing lacks {trace['trace_id']}: {lines}"
            rendered = await client.request(f"trace {trace['trace_id']}")
            assert any("engine" in line for line in rendered), rendered

            # PR-7 surface: readiness, collector history, dashboard.
            check_readyz(
                _http_json(base, "/readyz"), workers, process_backend
            )
            history = _wait_for_history(base)
            check_history(history, process_backend)
            check_dashboard(_http_text(base, "/dashboard?window=60"))
            assert "repro_slo_ok{" in _http_text(base, "/metrics"), (
                "/metrics lacks repro_slo_* with an SLO configured"
            )
            if history_output:
                with open(history_output, "w", encoding="utf-8") as fh:
                    json.dump(history, fh, indent=2, sort_keys=True)
                print(f"history document written to {history_output}")
        finally:
            await client.close()
    finally:
        await server.stop()

    print(
        f"smoke_metrics_endpoint: PASS (backend={backend}, "
        "trace spans stitched, /metrics + /traces + /readyz + "
        "/history.json + /dashboard live)"
    )
    return 0


def _wait_for_history(base: str, timeout_s: float = 10.0) -> dict:
    """Poll until the collector has at least one derived point (two
    ticks at the 0.2 s cadence)."""
    deadline = time.time() + timeout_s
    doc: dict = {}
    while time.time() < deadline:
        doc = _http_json(base, "/history.json?window=60")
        if doc.get("points"):
            return doc
        time.sleep(0.1)
    raise AssertionError(f"history never produced points: {doc}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--history-output", metavar="FILE", default="",
        help="also write the /history.json document (CI artifact)",
    )
    cli_args = parser.parse_args()
    sys.exit(asyncio.run(main(history_output=cli_args.history_output)))
