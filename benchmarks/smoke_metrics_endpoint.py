"""End-to-end observability smoke: serve, query, scrape, trace.

Boots a real :class:`~repro.server.transport.ReproServer` with two
cluster workers, the metrics exporter on an ephemeral port, and
``trace_sample=1.0``; runs one query over TCP; then asserts the whole
PR-6 acceptance path:

* ``/metrics`` (Prometheus text) exposes the serving counters —
  ``repro_queries_served_total``, per-family latency quantiles,
  coalesce rate, scheduler queue depth, and (process backend only)
  per-worker queue depths;
* ``/traces`` returns the query's stitched trace: transport →
  scheduler → (cluster_dispatch → worker, process backend) → engine,
  with the engine span carrying >= 3 kernel phase timings;
* the shell ``trace`` command over the *same* TCP connection lists
  that trace and renders it by id.

Honours ``REPRO_MP_START`` (`""`/`fork`/`spawn`) like the cluster
benchmarks, so CI exercises both start methods.  Exit code 0 on PASS.
"""

from __future__ import annotations

import asyncio
import json
import sys
import urllib.request

from repro.api import QuerySpec
from repro.server.client import ReproClient
from repro.server.transport import ReproServer

#: Span names every stitched trace must contain, per backend.
THREAD_SPANS = {"transport", "scheduler", "engine"}
PROCESS_SPANS = THREAD_SPANS | {"cluster_dispatch", "worker"}
MIN_PHASES = 3


def _http_json(base: str, path: str) -> dict:
    with urllib.request.urlopen(base + path, timeout=10.0) as response:
        return json.loads(response.read().decode("utf-8"))


def _http_text(base: str, path: str) -> str:
    with urllib.request.urlopen(base + path, timeout=10.0) as response:
        return response.read().decode("utf-8")


def check_prometheus(text: str, process_backend: bool) -> None:
    required = [
        "repro_queries_served_total",
        "repro_family_latency_ms",
        "repro_server_coalesce_rate",
        "repro_server_queue_depth",
        "repro_traces_recorded_total",
    ]
    if process_backend:
        required.append("repro_cluster_worker_queue_depth")
    missing = [name for name in required if name not in text]
    assert not missing, f"/metrics missing series: {missing}"
    # Quantile labels on the family summary, not just the series name.
    assert 'quantile="0.5"' in text and 'quantile="0.95"' in text, (
        "family latency summary lacks p50/p95 quantile labels"
    )


def check_trace(trace: dict, process_backend: bool) -> None:
    spans = trace.get("spans", [])
    names = {span["name"] for span in spans}
    expected = PROCESS_SPANS if process_backend else THREAD_SPANS
    assert expected <= names, (
        f"stitched trace spans {sorted(names)} missing "
        f"{sorted(expected - names)}"
    )
    engine_spans = [span for span in spans if span["name"] == "engine"]
    phases = {
        phase for span in engine_spans for phase in span.get("phases", {})
    }
    assert len(phases) >= MIN_PHASES, (
        f"engine span has {sorted(phases)}: want >= {MIN_PHASES} "
        "kernel phases"
    )


async def main() -> int:
    server = ReproServer(
        workers=2,
        metrics_port=0,
        trace_sample=1.0,
        batch_window_ms=0.0,
    )
    await server.start(tcp=("127.0.0.1", 0))
    backend = getattr(server.shards, "backend", "thread")
    process_backend = backend == "process"
    try:
        assert server.metrics_address is not None
        mhost, mport = server.metrics_address
        base = f"http://{mhost}:{mport}"
        host, port = server.tcp_address

        client = await ReproClient.connect(host, port=port)
        try:
            result = await client.execute(
                QuerySpec(graph="email", k=5, gamma=3)
            )
            assert result.communities, "query returned no communities"

            # Traces finalise before the response bytes leave the
            # server, so the scrape after the reply is race-free.
            listing = _http_json(base, "/traces?limit=5")["traces"]
            assert listing, "no traces retained after a traced query"
            trace = _http_json(base, f"/traces/{listing[0]['trace_id']}")
            check_trace(trace, process_backend)

            assert _http_text(base, "/healthz").strip() == "ok"
            check_prometheus(_http_text(base, "/metrics"), process_backend)
            snapshot = _http_json(base, "/metrics.json")
            assert snapshot["queries_served"] >= 1, snapshot
            assert snapshot["traces"]["traces_recorded"] >= 1, snapshot

            # Shell surface over the same connection: list + render.
            lines = await client.request("trace limit=5")
            assert any(
                trace["trace_id"] in line for line in lines
            ), f"shell 'trace' listing lacks {trace['trace_id']}: {lines}"
            rendered = await client.request(f"trace {trace['trace_id']}")
            assert any("engine" in line for line in rendered), rendered
        finally:
            await client.close()
    finally:
        await server.stop()

    print(
        f"smoke_metrics_endpoint: PASS (backend={backend}, "
        f"trace spans stitched, /metrics + /traces live)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(asyncio.run(main()))
