"""Figure 14 — progressive enumeration latency (k=128).

Paper shape: LocalSearch reports everything only at termination (flat
enumeration-time line); LocalSearch-P reports the top communities far
earlier (rising line that meets LocalSearch's at i=128).
Series printer: ``--eval fig14``.
"""

from __future__ import annotations

import pytest

from repro.core.local_search import LocalSearch
from repro.core.progressive import LocalSearchP


@pytest.mark.benchmark(group="fig14-latency-top1")
@pytest.mark.parametrize("gamma", (10, 50))
def bench_time_to_first_community(benchmark, gamma, arabic):
    """Latency until the top-1 community is available (progressive)."""

    def first():
        stream = LocalSearchP(arabic, gamma=gamma).stream()
        return next(stream)

    community = benchmark(first)
    assert community.influence > 0


@pytest.mark.benchmark(group="fig14-latency-top128")
@pytest.mark.parametrize("gamma", (10, 50))
def bench_time_to_128_progressive(benchmark, gamma, arabic):
    result = benchmark(lambda: LocalSearchP(arabic, gamma=gamma).run(k=128))
    assert len(result.communities) == 128


@pytest.mark.benchmark(group="fig14-latency-top128")
@pytest.mark.parametrize("gamma", (10, 50))
def bench_time_to_128_nonprogressive(benchmark, gamma, arabic):
    """LocalSearch's flat line: nothing arrives before this completes."""
    searcher = LocalSearch(arabic, gamma=gamma)
    result = benchmark(lambda: searcher.search(128))
    assert len(result.communities) == 128


@pytest.mark.benchmark(group="fig14-latency-shape")
def bench_latency_monotonicity(benchmark, arabic):
    """Top-1 must arrive much earlier than top-128 under LocalSearch-P."""

    def measure():
        import time

        searcher = LocalSearchP(arabic, gamma=10)
        t_first = t_last = None
        start = time.perf_counter()
        for i, _ in enumerate(searcher.stream(), start=1):
            if i == 1:
                t_first = time.perf_counter() - start
            if i == 128:
                t_last = time.perf_counter() - start
                break
        return t_first, t_last

    t_first, t_last = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert t_first < t_last
