"""Shared fixtures for the benchmark suite.

Each benchmark file regenerates one table/figure of the paper (see the
per-experiment index in DESIGN.md).  Datasets are the synthetic Table-1
stand-ins, built once per session.  Benchmarks measure *query* time only;
graph construction happens in fixtures.

Run with::

    pytest benchmarks/ --benchmark-only

Use ``--benchmark-group-by=group`` for paper-figure-shaped output.
"""

from __future__ import annotations

import pytest

from repro.graph.storage import FileEdgeStore, IOCounter
from repro.workloads.datasets import load_dataset
from repro.workloads.dblp import synthetic_dblp


@pytest.fixture(scope="session")
def email():
    return load_dataset("email")


@pytest.fixture(scope="session")
def youtube():
    return load_dataset("youtube")


@pytest.fixture(scope="session")
def wiki():
    return load_dataset("wiki")


@pytest.fixture(scope="session")
def livejournal():
    return load_dataset("livejournal")


@pytest.fixture(scope="session")
def arabic():
    return load_dataset("arabic")


@pytest.fixture(scope="session")
def uk():
    return load_dataset("uk")


@pytest.fixture(scope="session")
def twitter():
    return load_dataset("twitter")


@pytest.fixture(scope="session")
def dblp():
    graph, _ = synthetic_dblp()
    return graph


@pytest.fixture(scope="session")
def youtube_store_path(youtube, tmp_path_factory):
    """A file-backed, weight-ordered edge store of the youtube stand-in."""
    path = tmp_path_factory.mktemp("stores") / "youtube.edges"
    FileEdgeStore.create(path, youtube)
    return path


def fresh_store(path):
    """A new store handle with a fresh I/O counter."""
    return FileEdgeStore(path, IOCounter())
