#!/usr/bin/env python3
"""Quickstart: top-k influential community search on a small graph.

Builds the paper's Figure-3 example graph, runs the three public query
styles (one-shot top-k, progressive streaming, non-containment), and
prints the results, reproducing Figures 5/6 of the paper.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    LocalSearchP,
    top_k_influential_communities,
    top_k_noncontainment_communities,
)
from repro.workloads.paper_examples import figure3_graph


def describe(community) -> str:
    members = ", ".join(sorted(community.vertices))
    return (
        f"influence {community.influence:>5.1f}  "
        f"keynode {community.keynode_label:>4}  "
        f"members {{{members}}}"
    )


def main() -> None:
    graph = figure3_graph()
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    # ------------------------------------------------------------------
    # 1. One-shot top-k query (LocalSearch, Algorithm 1).
    # ------------------------------------------------------------------
    print("\n== top-4 influential 3-communities (LocalSearch) ==")
    result = top_k_influential_communities(graph, k=4, gamma=3)
    for i, community in enumerate(result, start=1):
        print(f"  top-{i}: {describe(community)}")
    stats = result.stats
    print(
        f"  accessed a subgraph of size {stats.accessed_size} "
        f"out of {stats.graph_size} "
        f"({stats.accessed_fraction:.1%}) in {stats.rounds} round(s)"
    )

    # ------------------------------------------------------------------
    # 2. Progressive streaming (LocalSearch-P, Algorithm 4): no k needed,
    # stop whenever you have seen enough.
    # ------------------------------------------------------------------
    print("\n== progressive stream (stop below influence 10) ==")
    for community in LocalSearchP(graph, gamma=3).stream():
        if community.influence < 10:
            print("  ... influence dropped below 10, stopping early")
            break
        print(f"  {describe(community)}")

    # ------------------------------------------------------------------
    # 3. Non-containment communities (Section 5.1): pairwise disjoint.
    # ------------------------------------------------------------------
    print("\n== top non-containment 3-communities ==")
    nc = top_k_noncontainment_communities(graph, k=3, gamma=3)
    for community in nc:
        print(f"  {describe(community)}")

    # ------------------------------------------------------------------
    # For the serving API — cached repeat queries, lazy ResultSets, and
    # the repro.open()/repro.connect() facade that runs the same query
    # in-process or against a `repro serve` server — see
    # examples/api_quickstart.py.
    # ------------------------------------------------------------------
    print("\n(serving API tour: python examples/api_quickstart.py)")


if __name__ == "__main__":
    main()
