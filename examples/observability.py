#!/usr/bin/env python3
"""Observability in-process: traces, kernel phases, and the exporter.

The same ``repro.obs`` tier the server uses works without any server:
hand a :class:`~repro.obs.trace.Tracer` to ``repro.open(...)`` and the
engine mints one trace per sampled query, down to the peel kernel's
per-phase timings; a :class:`~repro.obs.export.MetricsServer` then
serves the standard endpoints from the same process.

Run:  python examples/observability.py
"""

from __future__ import annotations

import json
import urllib.request

import repro
from repro import QuerySpec
from repro.obs import MetricsServer, Tracer, format_trace
from repro.service import ServiceMetrics

# sample=1.0: trace every query (a production default is ~0.02 —
# 1 in 50 — plus slow-query exemplars, which are always retained).
tracer = Tracer(sample=1.0, slow_ms=5.0)
metrics = ServiceMetrics()

with repro.open(metrics=metrics, tracer=tracer) as rp:
    # A cold query (real peel work) and a warm repeat (cache slice).
    for _ in range(2):
        rs = rp.graph("email").topk(k=10, gamma=10)
        print(
            f"[{rs.stats['source']}] {len(rs.communities)} communities "
            f"in {rs.stats['elapsed_ms']:.2f} ms"
        )

    # Every trace is a span tree; the engine span carries the kernel
    # phase breakdown (csr_build / gamma_core / peel / enumerate /
    # cursor_resume) — algorithmic time, not just queueing.
    print("\nrecent traces:")
    for trace in tracer.store.recent(5):
        print("\n".join(format_trace(trace)))

    # The zero-dep HTTP exporter serves the same data to the outside:
    # /metrics (Prometheus), /metrics.json, /traces, /traces/slow.
    exporter = MetricsServer(metrics, trace_store=tracer.store, port=0)
    host, port = exporter.start()
    try:
        base = f"http://{host}:{port}"
        text = urllib.request.urlopen(base + "/metrics").read().decode()
        wanted = (
            "repro_queries_served_total",
            "repro_cache_hit_rate",
            "repro_family_latency_ms",
        )
        print("\nscraped /metrics:")
        for line in text.splitlines():
            if line.startswith(wanted):
                print(f"  {line}")
        slow = json.loads(
            urllib.request.urlopen(base + "/traces/slow").read()
        )["traces"]
        print(f"\nslow-query exemplars retained (>=5ms): {len(slow)}")
    finally:
        exporter.stop()
