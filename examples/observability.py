#!/usr/bin/env python3
"""Observability in-process: traces, kernel phases, and the exporter.

The same ``repro.obs`` tier the server uses works without any server:
hand a :class:`~repro.obs.trace.Tracer` to ``repro.open(...)`` and the
engine mints one trace per sampled query, down to the peel kernel's
per-phase timings; a :class:`~repro.obs.export.MetricsServer` then
serves the standard endpoints from the same process.

Part two boots a real 2-worker :class:`~repro.server.transport.ReproServer`
with the history collector and an SLO, runs traffic, and pulls the
server-rendered ``/dashboard`` plus ``/history.json`` and ``/readyz``
— the full live-ops surface, all stdlib.

Run:  python examples/observability.py
"""

from __future__ import annotations

import asyncio
import json
import time
import urllib.request

import repro
from repro import QuerySpec
from repro.obs import MetricsServer, Tracer, format_trace
from repro.service import ServiceMetrics

# sample=1.0: trace every query (a production default is ~0.02 —
# 1 in 50 — plus slow-query exemplars, which are always retained).
tracer = Tracer(sample=1.0, slow_ms=5.0)
metrics = ServiceMetrics()

with repro.open(metrics=metrics, tracer=tracer) as rp:
    # A cold query (real peel work) and a warm repeat (cache slice).
    for _ in range(2):
        rs = rp.graph("email").topk(k=10, gamma=10)
        print(
            f"[{rs.stats['source']}] {len(rs.communities)} communities "
            f"in {rs.stats['elapsed_ms']:.2f} ms"
        )

    # Every trace is a span tree; the engine span carries the kernel
    # phase breakdown (csr_build / gamma_core / peel / enumerate /
    # cursor_resume) — algorithmic time, not just queueing.
    print("\nrecent traces:")
    for trace in tracer.store.recent(5):
        print("\n".join(format_trace(trace)))

    # The zero-dep HTTP exporter serves the same data to the outside:
    # /metrics (Prometheus), /metrics.json, /traces, /traces/slow.
    exporter = MetricsServer(metrics, trace_store=tracer.store, port=0)
    host, port = exporter.start()
    try:
        base = f"http://{host}:{port}"
        text = urllib.request.urlopen(base + "/metrics").read().decode()
        wanted = (
            "repro_queries_served_total",
            "repro_cache_hit_rate",
            "repro_family_latency_ms",
        )
        print("\nscraped /metrics:")
        for line in text.splitlines():
            if line.startswith(wanted):
                print(f"  {line}")
        slow = json.loads(
            urllib.request.urlopen(base + "/traces/slow").read()
        )["traces"]
        print(f"\nslow-query exemplars retained (>=5ms): {len(slow)}")
    finally:
        exporter.stop()


# ----------------------------------------------------------------------
# Part two: the live dashboard against a real 2-worker server.
# ----------------------------------------------------------------------
async def live_dashboard() -> None:
    from repro.server.client import ReproClient
    from repro.server.transport import ReproServer

    server = ReproServer(
        workers=2,
        metrics_port=0,          # ephemeral exporter port
        trace_sample=1.0,
        slo="p95_ms=500,err_rate=0.05,window_s=60",
        history_interval=0.2,    # fast cadence so the demo has points
    )
    await server.start(tcp=("127.0.0.1", 0))
    try:
        host, port = server.tcp_address
        mhost, mport = server.metrics_address
        base = f"http://{mhost}:{mport}"

        client = await ReproClient.connect(host, port=port)
        try:
            for gamma in (3, 5, 3):  # cold, cold, cache hit
                await client.execute(QuerySpec(graph="email", k=5, gamma=gamma))
        finally:
            await client.close()

        # Three collector ticks -> two derived rate points, enough for
        # the dashboard sparklines to draw a segment.
        deadline = time.time() + 10.0
        doc = {}
        while time.time() < deadline:
            doc = json.loads(
                urllib.request.urlopen(base + "/history.json?window=60").read()
            )
            if len(doc.get("points", [])) >= 2:
                break
            await asyncio.sleep(0.1)

        newest = doc["points"][-1]
        print(f"\nlive server on {host}:{port}, dashboard at {base}/dashboard")
        print(
            f"history: {len(doc['points'])} point(s), newest "
            f"qps={newest['qps']:.2f} queue={newest['queue_depth']} "
            f"workers={newest['workers']}"
        )
        ready = json.loads(urllib.request.urlopen(base + "/readyz").read())
        print(f"readyz: ready={ready['ready']} workers={ready.get('workers')}")
        slo = doc.get("slo_status") or {}
        print(f"slo: ok={slo.get('ok')} over {slo.get('window_s'):g}s window")

        html = urllib.request.urlopen(base + "/dashboard").read().decode()
        has_heatmap = 'id="heatmap"' in html
        print(
            f"dashboard: {len(html)} bytes of pure-stdlib HTML "
            f"(sparklines={'spark-qps' in html}, heatmap={has_heatmap})"
        )
    finally:
        await server.stop()


asyncio.run(live_dashboard())
