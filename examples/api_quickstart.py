#!/usr/bin/env python3
"""The public API in five minutes: open() and connect(), one surface.

Everything goes through three types:

* ``QuerySpec``   — the typed query (validated, wire-codable)
* ``Repro``       — the facade: ``repro.open(...)`` (in-process) or
                    ``repro.connect(...)`` (a running server)
* ``ResultSet``   — the lazy answer: slice, iterate, extend, stream

This script runs the identical queries against both backends — an
in-process engine and a live TCP server — and shows that the facade
cannot tell them apart.

Run:  python examples/api_quickstart.py
"""

from __future__ import annotations

import asyncio
import threading

import repro
from repro import QuerySpec


def show(title, rs) -> None:
    print(f"\n== {title} ==")
    for i, view in enumerate(rs, start=1):
        print(
            f"  top-{i}: influence={view.influence:.6g} "
            f"keynode={view.keynode} size={view.size}"
        )
    stats = rs.stats
    print(
        f"  [{stats['source']}] algorithm={stats['algorithm']} "
        f"kernel={stats['kernel']} in {stats['elapsed_ms']:.2f} ms"
    )


def local_demo() -> None:
    # ------------------------------------------------------------------
    # open(): the in-process backend.  Stand-in datasets are registered
    # lazily; nothing is built until the first query touches a graph.
    # ------------------------------------------------------------------
    with repro.open() as rp:
        email = rp.graph("email")

        # Nothing has run yet: ResultSets are lazy.
        rs = email.topk(k=5, gamma=5)
        print("fetched before first access?", rs.fetched)

        show("top-5 influential 5-communities (cold)", rs)

        # Slicing is served from the shared result cache: rs2[:3] needs
        # only the prefix, which the progressive order makes exact.
        rs2 = email.topk(k=5, gamma=5)
        top3 = rs2[:3]
        print(f"\nrs2[:3] -> {len(top3)} views, source={rs2.source}")

        # Extending RESUMES the cached progressive cursor (the paper's
        # suffix property): no prefix is ever re-peeled.
        rs.extend_to(8)
        print(f"extend_to(8) -> {len(rs)} views, source={rs.source}")

        # A spec is a value: build once, reuse, ship over the wire.
        spec = QuerySpec(graph="email", gamma=5, k=3, kernel="array")
        print("\nwire form:", spec.to_wire())
        assert QuerySpec.from_wire(spec.to_wire()) == spec
        show("same spec, explicit stdlib kernel", rp.topk(spec))


def remote_demo() -> None:
    # ------------------------------------------------------------------
    # connect(): the same surface against a live server.  Here we start
    # one in-process on an ephemeral port; normally it is
    # ``repro serve --tcp 8642`` on another machine.
    # ------------------------------------------------------------------
    from repro.server import ReproServer

    server = ReproServer(shards=2)
    started = threading.Event()
    box = {}

    def run_server():
        async def main():
            await server.start(tcp=("127.0.0.1", 0))
            box["port"] = server.tcp_address[1]
            started.set()
            await server.serve_until_shutdown()

        asyncio.run(main())

    thread = threading.Thread(target=run_server, daemon=True)
    thread.start()
    started.wait(10)

    with repro.connect(port=box["port"]) as rp:
        print("\nserver graphs:", ", ".join(rp.graphs()))
        # Identical call shape to the local path — the ResultSet is now
        # backed by the server's shared cache, coalescing and shards.
        rs = rp.graph("email").topk(k=5, gamma=5)
        show("the same query, remote backend", rs)
        rs.extend_to(8)
        print(f"remote extend_to(8) -> {len(rs)} views (server cursor resumed)")

    server.request_shutdown()
    thread.join(timeout=10)


def main() -> None:
    local_demo()
    remote_demo()
    print("\nopen() and connect(): one QuerySpec, one ResultSet, one API.")


if __name__ == "__main__":
    main()
