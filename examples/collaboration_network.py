#!/usr/bin/env python3
"""Scenario: influential research collaborations (the DBLP case study).

Reproduces Eval-IX (Figures 20 and 21): on a co-author network weighted
by PageRank, find the top-1 influential 5-community and the top-1
influential 6-truss community, and contrast them with the plain 5-core
community, which ignores influence and blows up to over a thousand
researchers.

Run:  python examples/collaboration_network.py
"""

from __future__ import annotations

from repro import LocalSearchP, top_k_truss_communities
from repro.graph.connectivity import component_of
from repro.graph.core_decomposition import gamma_core
from repro.graph.subgraph import PrefixView
from repro.workloads.dblp import synthetic_dblp


def main() -> None:
    graph, _planted = synthetic_dblp()
    n = graph.num_vertices
    print(
        f"co-author network: {n:,} researchers, {graph.num_edges:,} "
        "collaboration edges (weights = PageRank)"
    )

    # ------------------------------------------------------------------
    # Figure 20(a): the top-1 influential 5-community.
    # ------------------------------------------------------------------
    top_core = LocalSearchP(graph, gamma=5).run(k=1).communities[0]
    print("\n== top-1 influential 5-community (Figure 20a) ==")
    print(f"  {top_core.num_vertices} researchers:")
    for name in sorted(top_core.vertices):
        print(f"    - {name}")
    print(
        f"  keynode: {top_core.keynode_label} "
        f"(influence rank {top_core.keynode + 1} of {n:,}; "
        "paper: rank 215 of 1,743)"
    )

    # ------------------------------------------------------------------
    # Figure 20(b): the top-1 influential 6-truss community.
    # ------------------------------------------------------------------
    top_truss = top_k_truss_communities(graph, 1, 6).communities[0]
    print("\n== top-1 influential 6-truss community (Figure 20b) ==")
    print(f"  {top_truss.num_vertices} researchers:")
    for name in sorted(top_truss.vertices):
        print(f"    - {name}")
    print(
        f"  keynode: {top_truss.keynode_label} "
        f"(influence rank {top_truss.keynode + 1} of {n:,}; "
        "paper: rank 339 of 1,743)"
    )
    print(
        "  -> smaller and denser than the 5-community, with lower "
        "influence: the truss constraint is harder to satisfy."
    )

    # ------------------------------------------------------------------
    # Figure 21: the 5-core community, with no influence constraint.
    # ------------------------------------------------------------------
    view = PrefixView.whole(graph)
    alive, _ = gamma_core(view, 5)
    blob = component_of(view, top_core.keynode, alive)
    print("\n== the plain 5-core community around the same keynode ==")
    print(
        f"  {len(blob):,} researchers (paper: 1,148 of 1,743) - "
        "cohesiveness alone does not isolate the influential core;"
    )
    print(
        f"  the influence constraint refines it {len(blob) // max(top_core.num_vertices, 1)}x "
        f"down to the {top_core.num_vertices} researchers above."
    )


if __name__ == "__main__":
    main()
