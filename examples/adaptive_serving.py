#!/usr/bin/env python3
"""The adaptive control plane, live: watch a skew flip get absorbed.

One adaptive server, two graphs, three acts:

1. **Hot phase A** — a burst of traffic concentrated on graph ``a``.
   The controller's replica policy sees ``a`` take ~all the windowed
   demand under queue pressure and widens its candidate fan-out.
2. **The flip** — the hot set moves to graph ``b`` mid-run.  Demand
   share inverts; the controller grows ``b`` and (once ``a``'s share
   collapses below the hysteresis floor) shrinks ``a`` back.
3. **Admission** — a tenant with a tiny quota gets 429s while everyone
   else keeps flowing.

Every decision the controller makes is printed from its audit ring —
the same document ``/control.json`` and the dashboard panel serve.

Run:  python examples/adaptive_serving.py
"""

from __future__ import annotations

import asyncio

from repro.control import (
    AdaptiveController,
    AdmissionController,
    BatchWindowPolicy,
    PlacementPolicy,
    ReplicaPolicy,
)
from repro.errors import AdmissionRejected  # noqa: F401 — see act 3
from repro.server import ReproClient, ReproServer
from repro.workloads.generators import build_weighted_graph, chung_lu


def make_graph(seed):
    n, edges = chung_lu(300, avg_degree=6.0, seed=seed)
    return build_weighted_graph(n, edges, weights="degree", seed=seed)


async def drive(host, port, graph, seconds, lane, tenant=None):
    """Sustain cold-family traffic on one graph for ``seconds``.

    Each client owns a gamma "lane" and keeps advancing it, so every
    query is a fresh family — the cold peels are what build the queue
    pressure the controller's policies read.  Returns (served, 429s).
    """
    client = await ReproClient.connect(host=host, port=port)
    served = rejected = 0
    deadline = asyncio.get_running_loop().time() + seconds
    suffix = f" tenant={tenant}" if tenant else ""
    try:
        step = 0
        while asyncio.get_running_loop().time() < deadline:
            # gamma cycles through real community scales; the tiny delta
            # offset makes each (gamma, delta) pair a distinct family.
            delta = 2.0 + (lane * 1000 + step) * 1e-4
            lines = await client.request(
                f"query {graph} k=4 gamma={2 + step % 5} delta={delta:g}"
                f"{suffix}"
            )
            step += 1
            if lines and lines[0].startswith("error: admission rejected"):
                rejected += 1
            else:
                served += 1
    finally:
        await client.close()
    return served, rejected


async def main():
    # A fast-cadence controller so the demo converges in seconds; the
    # server defaults (1s interval, 5s dwell) suit real serving.
    controller = AdaptiveController(
        interval_s=0.2,
        window_s=2.0,
        dwell_s=0.4,
        policies=[
            BatchWindowPolicy(),
            ReplicaPolicy(min_window_queries=4, grow_depth=1),
            PlacementPolicy(),
        ],
        admission=AdmissionController(max_queue_depth=256),
    )
    server = ReproServer(
        preload_datasets=False,
        controller=controller,
        shards=4,
        history_interval=0.1,  # sample fast enough to catch the bursts
    )
    graph_a, graph_b = make_graph(1), make_graph(2)
    server.registry.register("a", lambda: graph_a)
    server.registry.register("b", lambda: graph_b)
    await server.start(tcp=("127.0.0.1", 0))
    host, port = server.tcp_address
    print(f"adaptive server on tcp://{host}:{port}")

    try:
        print("\n== act 1: traffic concentrates on graph 'a' ==")
        results = await asyncio.gather(
            *(drive(host, port, "a", 3.0, lane) for lane in range(8)),
            drive(host, port, "b", 3.0, 8),
        )
        print(f"  served: {sum(s for s, _ in results)} queries")
        print(f"  replication: {server.shards.replication_map()}")

        print("\n== act 2: the hot set flips to graph 'b' ==")
        results = await asyncio.gather(
            *(drive(host, port, "b", 3.0, 10 + lane) for lane in range(8)),
            drive(host, port, "a", 3.0, 18),
        )
        print(f"  served: {sum(s for s, _ in results)} queries")
        print(f"  replication: {server.shards.replication_map()}")

        print("\n== act 3: a tenant with a starvation-tier quota ==")
        controller.admission.set_quota("freeloader", rate=0.01, burst=2)
        _, rejected = await drive(
            host, port, "a", 1.0, 20, tenant="freeloader"
        )
        print(f"  freeloader: {rejected} requests refused (429)")
        print(f"  admission: {controller.admission.describe()['rejected']}")

        print("\n== the audit ring (what /control.json serves) ==")
        for entry in controller.audit():
            print(
                f"  [{entry['policy']}] {entry['action']} "
                f"{entry['target']}: {entry['before']} -> "
                f"{entry['after']} — {entry['reason']}"
            )
        if not controller.audit():
            print("  (no periodic decisions fired on this machine's "
                  "timing — rerun, or lower dwell_s further)")
    finally:
        await server.stop()
    print("\nserver stopped; controller loop joined.")


if __name__ == "__main__":
    asyncio.run(main())
