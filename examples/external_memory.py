#!/usr/bin/env python3
"""Scenario: querying a graph whose edges live on disk (semi-external).

Reproduces the Eval-VI/VII setting: the edge set is stored in a binary
file sorted by decreasing edge weight; main memory holds only per-vertex
metadata plus the edges an algorithm chooses to load.  LocalSearch-SE
reads just the weight-prefix it needs with sequential I/O, while
OnlineAll-SE must stream the entire file.

Run:  python examples/external_memory.py
"""

from __future__ import annotations

import os
import tempfile
import time

from repro.baselines import local_search_se, online_all_se
from repro.graph.storage import FileEdgeStore, IOCounter
from repro.workloads.datasets import load_dataset

K = 10
GAMMA = 10


def main() -> None:
    graph = load_dataset("youtube")
    print(
        f"graph: {graph.num_vertices:,} vertices, "
        f"{graph.num_edges:,} edges"
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "youtube.edges")
        FileEdgeStore.create(path, graph)
        file_kb = os.path.getsize(path) / 1024
        print(f"edge store written: {path} ({file_kb:.0f} KiB on disk)")

        # --------------------------------------------------------------
        # LocalSearch-SE: sequential reads of exactly the needed prefix.
        # --------------------------------------------------------------
        store = FileEdgeStore(path, IOCounter(block_edges=4096))
        start = time.perf_counter()
        local = local_search_se(graph, store, K, GAMMA)
        local_ms = (time.perf_counter() - start) * 1000
        print(f"\n== LocalSearch-SE (top-{K}, gamma={GAMMA}) ==")
        print(f"  time:            {local_ms:9.2f} ms")
        print(f"  edges read:      {local.io.edges_read:9,}")
        print(f"  blocks read:     {local.io.blocks_read:9,}")
        print(f"  resident edges:  {local.io.peak_resident_edges:9,}")

        # --------------------------------------------------------------
        # OnlineAll-SE: the whole file, plus spill I/O under a budget.
        # --------------------------------------------------------------
        budget = graph.num_edges // 4
        store2 = FileEdgeStore(path, IOCounter(block_edges=4096))
        start = time.perf_counter()
        global_ = online_all_se(
            graph, store2, K, GAMMA, memory_budget_edges=budget
        )
        global_ms = (time.perf_counter() - start) * 1000
        print(f"\n== OnlineAll-SE (memory budget {budget:,} edges) ==")
        print(f"  time:            {global_ms:9.2f} ms")
        print(f"  edges read:      {global_.io.edges_read:9,}")
        print(f"  blocks read:     {global_.io.blocks_read:9,}")
        print(f"  resident edges:  {global_.io.peak_resident_edges:9,}")

        assert local.influences == global_.influences
        print("\nboth returned identical communities;")
        print(
            f"LocalSearch-SE read {global_.io.edges_read // max(local.io.edges_read, 1)}x "
            "fewer edges and held "
            f"{global_.io.peak_resident_edges // max(local.io.peak_resident_edges, 1)}x "
            "fewer in memory."
        )


if __name__ == "__main__":
    main()
