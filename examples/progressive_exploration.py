#!/usr/bin/env python3
"""Scenario: interactive exploration with the progressive API.

The paper's Section 4: batch algorithms keep the user waiting until the
whole query finishes; LocalSearch-P streams communities in decreasing
influence order so the first answers arrive orders of magnitude earlier,
and `k` never needs to be chosen up front (reproducing Figure 14's
latency story).

Run:  python examples/progressive_exploration.py
"""

from __future__ import annotations

import time

from repro import LocalSearch, LocalSearchP
from repro.workloads.datasets import load_dataset

GAMMA = 10
TOPS = (1, 2, 4, 8, 16, 32, 64, 128)


def main() -> None:
    graph = load_dataset("arabic")
    print(
        f"graph: {graph.num_vertices:,} vertices, "
        f"{graph.num_edges:,} edges; gamma = {GAMMA}"
    )

    # ------------------------------------------------------------------
    # Batch baseline: nothing is reported until the very end.
    # ------------------------------------------------------------------
    searcher = LocalSearch(graph, gamma=GAMMA)
    start = time.perf_counter()
    batch = searcher.search(128)
    batch_ms = (time.perf_counter() - start) * 1000
    print(
        f"\nLocalSearch (batch): all 128 communities after "
        f"{batch_ms:.2f} ms - and none before that"
    )

    # ------------------------------------------------------------------
    # Progressive: per-community first-seen latency (Figure 14).
    # ------------------------------------------------------------------
    print("\nLocalSearch-P (progressive): time until top-i is reported")
    print(f"  {'top-i':>6}  {'latency (ms)':>13}  influence")
    collected = []
    for i, (community, seconds) in enumerate(
        LocalSearchP(graph, gamma=GAMMA).stream_with_timestamps(), start=1
    ):
        collected.append(community)
        if i in TOPS:
            print(
                f"  {i:>6}  {seconds * 1000:>13.3f}  "
                f"{community.influence:.8f}"
            )
        if i >= 128:
            break

    assert [c.influence for c in collected] == sorted(
        (c.influence for c in collected), reverse=True
    )

    # ------------------------------------------------------------------
    # The user-driven stop: no k, quit on a semantic condition.
    # ------------------------------------------------------------------
    print("\nstop condition demo: communities with >= 50 members")
    found = 0
    examined = 0
    for community in LocalSearchP(graph, gamma=GAMMA).stream():
        examined += 1
        if community.num_vertices >= 50:
            found += 1
            print(
                f"  found one: influence {community.influence:.8f}, "
                f"{community.num_vertices} members "
                f"(after examining {examined} communities)"
            )
        if found == 3 or examined >= 2000:
            break
    print("  terminated the stream early - no wasted work on the rest")


if __name__ == "__main__":
    main()
