#!/usr/bin/env python3
"""Scenario: finding influential communities in a social network.

This is the workload the paper's introduction motivates: "detecting
cohesive communities consisting of celebrities or influential people in
social networks".  We build a YouTube-like synthetic social network
(power-law degrees, dense planted interest groups), weight users by
PageRank — their social influence — and compare every online algorithm on
the same top-k query, reproducing the Figure-8 comparison in miniature.

Run:  python examples/social_influencers.py
"""

from __future__ import annotations

import time

from repro import LocalSearchP, top_k_influential_communities
from repro.baselines import backward, forward, online_all
from repro.workloads.datasets import load_dataset

K = 10
GAMMA = 10


def timed(label, fn):
    start = time.perf_counter()
    result = fn()
    elapsed = (time.perf_counter() - start) * 1000
    print(f"  {label:<22} {elapsed:>9.2f} ms")
    return result


def main() -> None:
    print("loading the youtube stand-in (power-law + planted groups)...")
    graph = load_dataset("youtube")
    print(f"graph: {graph.num_vertices:,} users, {graph.num_edges:,} ties")

    print(f"\n== query: top-{K} influential {GAMMA}-communities ==")
    local = timed(
        "LocalSearch-P", lambda: LocalSearchP(graph, gamma=GAMMA).run(k=K)
    )
    fwd = timed("Forward (global)", lambda: forward(graph, K, GAMMA))
    bwd = timed("Backward (quadratic)", lambda: backward(graph, K, GAMMA))
    oa = timed("OnlineAll (global)", lambda: online_all(graph, K, GAMMA))

    assert local.influences == fwd.influences == oa.influences
    assert bwd.influences == local.influences
    print("  (all four algorithms returned identical communities)")

    print("\n== the influential communities ==")
    for i, community in enumerate(local.communities, start=1):
        sample = ", ".join(f"u{v}" for v in sorted(community.vertices)[:6])
        suffix = ", ..." if community.num_vertices > 6 else ""
        print(
            f"  top-{i}: influence {community.influence:.6f}, "
            f"{community.num_vertices} members ({sample}{suffix})"
        )

    stats = local.stats
    print(
        f"\nLocalSearch-P accessed {stats.accessed_size:,} of "
        f"{stats.graph_size:,} size units ({stats.accessed_fraction:.2%}) "
        "- the locality that makes it instance-optimal."
    )

    # Influence-threshold exploration: stream until communities get weak.
    print("\n== exploration: every community above half the top influence ==")
    threshold = local.communities[0].influence / 2
    count = 0
    for community in LocalSearchP(graph, gamma=GAMMA).stream():
        if community.influence < threshold:
            break
        count += 1
    print(
        f"  {count} communities have influence >= {threshold:.6f} "
        "(found without ever specifying k)"
    )


if __name__ == "__main__":
    main()
