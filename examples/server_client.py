"""Demo: drive the concurrent repro server over real sockets.

Spawns a :class:`~repro.server.ReproServer` in-process on an ephemeral
TCP port, then exercises it the way a deployment would — point the same
client at ``repro serve --tcp 8642`` to talk to a separate process:

* repeated queries against a hot graph (cold -> cache -> resumed);
* a burst of *concurrent* clients whose queries coalesce onto shared
  cursor advances;
* a per-connection progressive session;
* the server-side metrics that watch it all.

Run with::

    PYTHONPATH=src python examples/server_client.py
"""

from __future__ import annotations

import asyncio

from repro.server import ReproClient, ReproServer

DATASET = "email"
GAMMA = 5


async def one_shot_queries(host: str, port: int) -> None:
    print("== one connection, three queries (watch the cache source) ==")
    client = await ReproClient.connect(host, port=port)
    for k in (8, 3, 16):
        lines = await client.query(DATASET, k=k, gamma=GAMMA)
        print(f"  k={k:<3} {lines[0]}")
    await client.close()


async def concurrent_burst(host: str, port: int, clients: int = 8) -> None:
    print(f"== {clients} concurrent clients, one query family ==")

    async def worker(index: int) -> str:
        client = await ReproClient.connect(host, port=port)
        lines = await client.query(DATASET, k=2 + index, gamma=GAMMA)
        await client.close()
        return lines[0]

    for header in await asyncio.gather(*(worker(i) for i in range(clients))):
        print(f"  {header}")


async def progressive_session(host: str, port: int) -> None:
    print("== progressive session (no k needed; never repeats) ==")
    client = await ReproClient.connect(host, port=port)
    opened = await client.request(f"session open {DATASET} gamma={GAMMA}")
    sid = opened[0].split()[1]
    for _ in range(2):
        for line in await client.request(f"session next {sid} 2"):
            print(f"  {line}")
    await client.request(f"session close {sid}")
    await client.close()


async def show_metrics(host: str, port: int) -> None:
    print("== server metrics ==")
    client = await ReproClient.connect(host, port=port)
    for line in await client.request("metrics"):
        print(f"  {line}")
    await client.close()


async def worker_backed_server() -> None:
    """The cluster tier: the same server over worker *processes*.

    ``workers=2`` promotes the execution pool to two long-lived worker
    processes attached to shared-memory CSR segments (``repro serve
    --tcp 8642 --workers 2`` from the CLI).  Watch the ``worker:<id>``
    provenance on the JSON responses and the ``cluster`` metrics
    section; on platforms without multiprocessing the server falls back
    to threads and everything still works.
    """
    print("== worker-backed server (multi-process cluster tier) ==")
    server = ReproServer(workers=2)
    await server.start(tcp=("127.0.0.1", 0))
    assert server.tcp_address is not None
    host, port = server.tcp_address
    print(f"  backend: {server.shards.backend} x{server.shards.num_shards}")
    try:
        client = await ReproClient.connect(host, port=port)
        for k in (6, 12):  # cold, then a cursor resume in the worker
            payload = await client.query(DATASET, k=k, gamma=GAMMA, mode="json")
            print(
                f"  k={k:<3} source={payload['source']:<9} "
                f"worker={payload.get('worker')}"
            )
        await client.close()
    finally:
        await server.stop()


async def main() -> None:
    server = ReproServer(shards=2, batch_window_ms=1.0)
    await server.start(tcp=("127.0.0.1", 0))
    assert server.tcp_address is not None
    host, port = server.tcp_address
    print(f"server listening on tcp://{host}:{port}\n")
    try:
        await one_shot_queries(host, port)
        await concurrent_burst(host, port)
        await progressive_session(host, port)
        await show_metrics(host, port)
    finally:
        await server.stop()
    stats = server.scheduler.stats
    print(
        f"\ncoalescing: {stats.queries} queries in {stats.batches} engine "
        f"passes (max batch width {stats.max_width})"
    )
    print()
    await worker_backed_server()


if __name__ == "__main__":
    asyncio.run(main())
