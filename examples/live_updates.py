#!/usr/bin/env python3
"""Live graphs: mutate a served graph without restarting or going cold.

``Graph.mutate(ops)`` applies an edge batch through the registry's
``repro.live`` path: the new generation is a versioned *overlay* over
the immutable base CSR (no rebuild), and the result cache migrates
under **scoped invalidation** — a cached family survives the flip iff
its influence watermark sits strictly above the batch's *barrier*
weight (the largest weight whose threshold subgraph the batch could
have touched).  Everything above the barrier is provably unchanged, so
preserved answers are byte-identical to what a full recompute would
return.

This script builds a graph with two dense high-weight communities and
a low-weight tail, then shows:

1. tail churn — barriers below the communities' influence — keeps the
   cache warm (``source="cache"`` after the mutation);
2. deleting an edge *inside* the top community raises the barrier past
   the watermark, so the family recomputes (and the answer changes);
3. compaction folds the overlay chain into a fresh flat generation
   with nothing invalidated.

Run:  python examples/live_updates.py
"""

from __future__ import annotations

import random

import repro
from repro.graph.builder import graph_from_arrays
from repro.service.registry import GraphRegistry

N = 400
BLOCK = 12  # two dense blocks on the highest-weight labels


def build_registry() -> GraphRegistry:
    rng = random.Random(7)
    edges = set()
    for base in (0, BLOCK):  # labels 0..11 and 12..23
        for i in range(BLOCK):
            for j in range(i + 1, BLOCK):
                if rng.random() < 0.9:
                    edges.add((base + i, base + j))
    for _ in range(N):  # sparse background + tail churn material
        u, v = rng.randrange(N), rng.randrange(N)
        if u != v:
            edges.add((min(u, v), max(u, v)))
    weights = [float(N - i) for i in range(N)]  # label 0 = heaviest
    registry = GraphRegistry(preload_datasets=False)
    registry.register(
        "demo", lambda: graph_from_arrays(N, sorted(edges), weights=weights)
    )
    return registry


def show(title: str, rs) -> None:
    print(f"\n== {title} ==")
    for i, view in enumerate(rs, start=1):
        print(
            f"  top-{i}: influence={view.influence:g} "
            f"keynode={view.keynode} size={view.size}"
        )
    print(f"  [source={rs.source}]")


def report(event) -> None:
    stats = event.stats
    print(
        f"\nmutated {event.graph!r} v{event.old_version} -> "
        f"v{event.new_version}: +{stats.inserted} -{stats.deleted} "
        f"~{stats.reweighted} barrier={event.barrier:g} "
        f"preserved={event.preserved} invalidated={event.invalidated} "
        f"pending_deltas={event.pending_deltas}"
    )


def main() -> None:
    registry = build_registry()
    with repro.open(registry=registry) as rp:
        g = rp.graph("demo")

        show("top-2 influential 8-communities (cold)", g.topk(k=2, gamma=8))

        # --------------------------------------------------------------
        # 1. Tail churn: the barrier is the smaller endpoint weight —
        #    far below the dense blocks' influence — so the cached
        #    family migrates warm across the version flip.
        # --------------------------------------------------------------
        report(g.mutate([("insert", 390, 395), ("reweight", 398, 1.25)]))
        show("same query after tail churn (still warm)", g.topk(k=2, gamma=8))

        # --------------------------------------------------------------
        # 2. Structural hit: deleting inside the top block raises the
        #    barrier above the watermark — the family recomputes, and
        #    the weakened block drops out of the gamma=8 answer.
        # --------------------------------------------------------------
        for v in range(4, 9):
            report(g.mutate([("delete", 0, v)]))
        show("after deleting inside the top block", g.topk(k=2, gamma=8))

        # --------------------------------------------------------------
        # 3. Compaction: fold the overlay chain into a flat CSR.  Same
        #    content, new representation — every family stays warm.
        # --------------------------------------------------------------
        event = registry.compact("demo")
        if event is not None:
            print(
                f"\ncompacted to v{event.new_version}: "
                f"preserved={event.preserved} invalidated={event.invalidated}"
            )
        show("after compaction (warm again)", g.topk(k=2, gamma=8))

        live = (rp.metrics.snapshot().get("live") or {}) if rp.metrics else {}
        print(f"\nlive counters: {live}")


if __name__ == "__main__":
    main()
