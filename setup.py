"""Setuptools shim.

The execution environment has no ``wheel`` package (and no network to
fetch one), so PEP 660 editable installs fail; this shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``python setup.py develop``) work with setuptools alone.  All metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
