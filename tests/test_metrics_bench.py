"""Graph metrics, error types, and the bench harness/reporting layer."""

from __future__ import annotations

import pytest

from repro.bench.harness import ExperimentReport, Series, measure_ms
from repro.bench.reporting import (
    format_report,
    format_series_group,
    format_table,
)
from repro.errors import (
    DuplicateWeightError,
    ReproError,
    SelfLoopError,
    UnknownVertexError,
)
from repro.graph.builder import graph_from_arrays
from repro.graph.metrics import (
    GraphStatistics,
    degree_histogram,
    graph_statistics,
)


class TestMetrics:
    def test_statistics_on_clique(self, two_cliques):
        stats = graph_statistics(two_cliques, "cliques")
        assert stats.num_vertices == 8
        assert stats.num_edges == 12
        assert stats.max_degree == 3
        assert stats.avg_degree == 3.0
        assert stats.gamma_max == 3

    def test_row_formatting(self, two_cliques):
        stats = graph_statistics(two_cliques, "cliques")
        row = stats.as_row()
        assert row[0] == "cliques"
        assert len(row) == len(GraphStatistics.header())

    def test_degree_histogram(self):
        g = graph_from_arrays(4, [(0, 1), (0, 2), (0, 3)])
        assert degree_histogram(g) == {3: 1, 1: 3}


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(DuplicateWeightError, ReproError)
        assert issubclass(SelfLoopError, ReproError)
        assert issubclass(UnknownVertexError, ReproError)

    def test_messages_carry_context(self):
        err = DuplicateWeightError(3.0, "a", "b")
        assert "3.0" in str(err)
        err2 = UnknownVertexError("ghost")
        assert "ghost" in str(err2)
        err3 = SelfLoopError("x")
        assert "x" in str(err3)


class TestHarness:
    def test_measure_ms_positive(self):
        assert measure_ms(lambda: sum(range(100)), repeat=2) >= 0

    def test_measure_ms_warmup(self):
        calls = []
        measure_ms(lambda: calls.append(1), repeat=2, warmup=3)
        assert len(calls) == 5

    def test_series(self):
        s = Series("algo")
        s.add(5, 10.0)
        s.add(10, None)
        assert s.x_values == [5, 10]
        assert s.y_values == [10.0, None]

    def test_ratio(self):
        fast = Series("fast")
        slow = Series("slow")
        fast.add(1, 2.0)
        slow.add(1, 20.0)
        fast.add(2, None)
        slow.add(2, 5.0)
        assert fast.ratio_to(slow) == [10.0, None]

    def test_report_groups_and_notes(self):
        report = ExperimentReport("figX", "test")
        report.add_series("g1", Series("a"))
        report.note("observation")
        assert "g1" in report.groups
        assert report.notes == ["observation"]


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["col", "x"], [["a", "1"], ["bb", "22"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_format_series_group(self):
        s = Series("algo")
        s.add(5, 1.5)
        s.add(10, None)
        text = format_series_group("email", [s], "k")
        assert "email" in text
        assert "algo" in text
        assert "-" in text  # the omitted point

    def test_format_series_group_empty(self):
        assert "(no data)" in format_series_group("x", [], "k")

    def test_format_report_full(self):
        report = ExperimentReport("figX", "demo")
        report.header = ["a"]
        report.rows = [["1"]]
        s = Series("algo")
        s.add(1, 123456.0)
        report.add_series("grp", s)
        report.note("done")
        text = format_report(report)
        assert "figX" in text
        assert "123,456" in text
        assert "done" in text

    def test_cell_formats(self):
        s = Series("a")
        for value in (12345.0, 55.5, 1.2345, 0.0001):
            s.add(1, value)
        text = format_series_group("g", [s], "x")
        assert "12,345" in text
        assert "55.5" in text
        assert "1.234" in text
        assert "1.00e-04" in text


class TestExperimentRegistry:
    def test_registry_covers_every_artifact(self):
        from repro.bench.experiments import EXPERIMENTS

        expected = {
            "table1", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
            "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "case",
            "access", "growth", "index",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment(self):
        from repro.bench.experiments import run_experiment

        with pytest.raises(SystemExit):
            run_experiment("fig99")

    def test_table1_runs(self):
        from repro.bench.experiments import run_table1

        report = run_table1(quick=True)
        assert len(report.rows) == 8
        text = format_report(report)
        assert "email" in text and "twitter" in text

    def test_access_fraction_runs(self):
        from repro.bench.experiments import run_access_fraction

        report = run_access_fraction(quick=True)
        assert len(report.rows) == 8
        for row in report.rows:
            assert row[3].endswith("%")

    def test_case_study_runs(self):
        from repro.bench.experiments import run_case_study

        report = run_case_study(quick=True)
        as_dict = {row[0]: row[1] for row in report.rows}
        assert as_dict["truss inside 5-community"] == "True"
