"""BatchScheduler: coalescing correctness, slicing, and error paths.

The invariant under test: whatever the batching, every waiter receives
exactly the prefix a serial, cache-free execution would have returned.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import UnknownGraphError
from repro.graph.builder import graph_from_arrays
from repro.server import BatchScheduler, ShardPool
from repro.service import (
    GraphRegistry,
    QueryEngine,
    ResultCache,
    ServiceMetrics,
    TopKQuery,
)


def layered_cliques(num_cliques=6):
    """Disjoint K4s with strictly decreasing weights: many communities."""
    edges = []
    for c in range(num_cliques):
        base = 4 * c
        for i in range(4):
            for j in range(i + 1, 4):
                edges.append((base + i, base + j))
    return graph_from_arrays(4 * num_cliques, edges)


@pytest.fixture()
def registry():
    registry = GraphRegistry(preload_datasets=False)
    registry.register("cliques", layered_cliques)
    return registry


def make_scheduler(registry, metrics=None, window_s=0.05, max_batch=64):
    engine = QueryEngine(registry, cache=ResultCache(), metrics=metrics)
    pool = ShardPool(2)
    scheduler = BatchScheduler(
        engine, pool, metrics=metrics, max_batch=max_batch, window_s=window_s
    )
    return scheduler, pool


def reference_views(registry, query):
    """What a serial, cache-free engine returns for ``query``."""
    return QueryEngine(registry, cache=None).execute(query).communities


def test_concurrent_same_family_coalesces_to_one_pass(registry):
    async def main():
        metrics = ServiceMetrics()
        scheduler, pool = make_scheduler(registry, metrics)
        try:
            ks = [1, 3, 5, 2, 4, 5]
            queries = [TopKQuery(graph="cliques", gamma=3, k=k) for k in ks]
            results = await asyncio.gather(
                *(scheduler.submit(q) for q in queries)
            )
        finally:
            pool.shutdown()
        assert scheduler.stats.batches == 1
        assert scheduler.stats.queries == len(ks)
        assert scheduler.stats.max_width == len(ks)
        assert metrics.max_batch_width == len(ks)
        assert metrics.queue_depth_peak >= len(ks)
        for query, result in zip(queries, results):
            assert len(result.communities) == query.k
            assert result.communities == reference_views(registry, query)
        # Exactly one waiter (a max-k one) carried the engine execution.
        sources = sorted(r.source for r in results)
        assert sources.count("coalesced") == len(ks) - 1
        assert "cold" in sources

    asyncio.run(main())


def test_different_families_do_not_coalesce(registry):
    async def main():
        scheduler, pool = make_scheduler(registry)
        try:
            results = await asyncio.gather(
                scheduler.submit(TopKQuery(graph="cliques", gamma=3, k=2)),
                scheduler.submit(TopKQuery(graph="cliques", gamma=2, k=2)),
            )
        finally:
            pool.shutdown()
        assert scheduler.stats.batches == 2
        assert all(r.source == "cold" for r in results)

    asyncio.run(main())


def test_max_batch_splits_large_bursts(registry):
    async def main():
        scheduler, pool = make_scheduler(registry, max_batch=2)
        try:
            queries = [
                TopKQuery(graph="cliques", gamma=3, k=k) for k in (1, 2, 3, 4, 5)
            ]
            results = await asyncio.gather(
                *(scheduler.submit(q) for q in queries)
            )
        finally:
            pool.shutdown()
        assert scheduler.stats.batches == 3
        assert scheduler.stats.queries == 5
        for query, result in zip(queries, results):
            assert result.communities == reference_views(registry, query)

    asyncio.run(main())


def test_serial_traffic_is_width_one_and_undelayed(registry):
    async def main():
        scheduler, pool = make_scheduler(registry, window_s=0.0)
        try:
            for k in (2, 4, 1):
                result = await scheduler.submit(
                    TopKQuery(graph="cliques", gamma=3, k=k)
                )
                assert len(result.communities) == k
        finally:
            pool.shutdown()
        assert scheduler.stats.batches == 3
        assert scheduler.stats.max_width == 1

    asyncio.run(main())


def test_followers_complete_flag_tracks_their_own_k(registry):
    async def main():
        scheduler, pool = make_scheduler(registry)
        try:
            # 6 cliques -> 6 communities total; k=10 exhausts the stream.
            big, small = await asyncio.gather(
                scheduler.submit(TopKQuery(graph="cliques", gamma=3, k=10)),
                scheduler.submit(TopKQuery(graph="cliques", gamma=3, k=2)),
            )
        finally:
            pool.shutdown()
        assert big.complete
        assert len(big.communities) == 6
        assert not small.complete
        assert len(small.communities) == 2

    asyncio.run(main())


def test_errors_propagate_to_every_waiter(registry):
    async def main():
        scheduler, pool = make_scheduler(registry)
        try:
            results = await asyncio.gather(
                scheduler.submit(TopKQuery(graph="missing", gamma=3, k=2)),
                scheduler.submit(TopKQuery(graph="missing", gamma=3, k=4)),
                return_exceptions=True,
            )
        finally:
            pool.shutdown()
        assert len(results) == 2
        assert all(isinstance(r, UnknownGraphError) for r in results)

    asyncio.run(main())


def test_queue_depth_returns_to_zero(registry):
    async def main():
        scheduler, pool = make_scheduler(registry)
        try:
            await asyncio.gather(
                *(
                    scheduler.submit(TopKQuery(graph="cliques", gamma=3, k=k))
                    for k in (1, 2, 3)
                )
            )
        finally:
            pool.shutdown()
        assert scheduler.queue_depth == 0

    asyncio.run(main())


def test_validation():
    registry = GraphRegistry(preload_datasets=False)
    engine = QueryEngine(registry)
    pool = ShardPool(1)
    try:
        with pytest.raises(ValueError):
            BatchScheduler(engine, pool, max_batch=0)
        with pytest.raises(ValueError):
            BatchScheduler(engine, pool, window_s=-1.0)
    finally:
        pool.shutdown()


def test_kernel_is_part_of_the_coalesce_key(registry):
    """Regression: the pre-QuerySpec BatchKey ignored the peel kernel,
    so a kernel=python query could be sliced from another kernel's
    engine pass and report that kernel's provenance.  The spec's
    cache_key() folds the resolved kernel in: different kernels never
    share a pass, and each waiter's QueryResult.kernel is its own."""

    async def main():
        scheduler, pool = make_scheduler(registry)
        try:
            python_q = TopKQuery(graph="cliques", gamma=3, k=2, kernel="python")
            array_q = TopKQuery(graph="cliques", gamma=3, k=4, kernel="array")
            assert scheduler.key_for(python_q) != scheduler.key_for(array_q)
            py_result, arr_result = await asyncio.gather(
                scheduler.submit(python_q),
                scheduler.submit(array_q),
            )
        finally:
            pool.shutdown()
        # Two families -> two engine passes, nothing coalesced across.
        assert scheduler.stats.batches == 2
        assert py_result.source == "cold" and arr_result.source == "cold"
        # Provenance is exact per waiter, not inherited from a lead.
        assert py_result.kernel == "python"
        assert arr_result.kernel == "array"
        # ... and the answers are byte-identical anyway (differential
        # kernel equivalence), so only provenance was ever at stake.
        assert py_result.communities == arr_result.communities[:2]

    asyncio.run(main())


def test_same_kernel_spellings_do_coalesce(registry, monkeypatch):
    """kernel=None under REPRO_KERNEL=array and an explicit
    kernel=array resolve to the same family and share one pass."""
    monkeypatch.setenv("REPRO_KERNEL", "array")

    async def main():
        metrics = ServiceMetrics()
        scheduler, pool = make_scheduler(registry, metrics)
        try:
            implicit = TopKQuery(graph="cliques", gamma=3, k=2)
            explicit = TopKQuery(graph="cliques", gamma=3, k=4, kernel="array")
            assert scheduler.key_for(implicit) == scheduler.key_for(explicit)
            results = await asyncio.gather(
                scheduler.submit(implicit), scheduler.submit(explicit)
            )
        finally:
            pool.shutdown()
        assert scheduler.stats.batches == 1
        assert sorted(r.source for r in results) == ["coalesced", "cold"]
        assert all(r.kernel == "array" for r in results)

    asyncio.run(main())
