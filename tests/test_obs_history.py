"""MetricsHistory: tick rings, derived rates, SLOs, breach transitions.

The collector stores cumulative counters per tick and derives rates at
read time from consecutive-pair deltas over real dt — these tests pin
the properties that design buys: exact rates across ring wrap, across a
collector stop/start, and across scrape gaps, plus the SLO state
machine's ok -> breach -> recovered transitions.
"""

from __future__ import annotations

import time

import pytest

from repro.obs.history import SLO, MetricsHistory, parse_slo
from repro.service.metrics import ServiceMetrics


class FakeClock:
    """A manually-advanced timestamp source."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class StubMetrics:
    """A snapshot()-shaped stub with directly settable counters."""

    def __init__(self) -> None:
        self.queries = 0
        self.errors = 0
        self.sources = {"cold": 0, "cache": 0}
        self.families = {}
        self.latency = {}

    def snapshot(self):
        return {
            "queries_served": self.queries,
            "errors": self.errors,
            "by_source": dict(self.sources),
            "server": {"batches": 0, "batched_queries": 0, "queue_depth": 0},
            "cluster": {},
            "by_family": dict(self.families),
            "latency_overall_ms": dict(self.latency),
        }


def make_history(clock, metrics=None, **kwargs):
    return MetricsHistory(
        metrics if metrics is not None else StubMetrics(),
        clock=clock,
        **kwargs,
    )


class TestDerivedRates:
    def test_rates_come_from_pair_deltas_over_real_dt(self):
        clock, metrics = FakeClock(), StubMetrics()
        history = make_history(clock, metrics)
        history.sample()
        metrics.queries += 10
        metrics.sources["cold"] += 6
        metrics.sources["cache"] += 4
        clock.advance(2.0)
        history.sample()
        [point] = history.series()
        assert point["qps"] == pytest.approx(5.0)
        assert point["hit_rate"] == pytest.approx(0.4)
        assert point["error_rate"] == 0.0
        assert point["dt"] == pytest.approx(2.0)

    def test_scrape_gap_widens_dt_instead_of_spiking_rate(self):
        clock, metrics = FakeClock(), StubMetrics()
        history = make_history(clock, metrics)
        history.sample()
        metrics.queries += 10
        clock.advance(10.0)  # a delayed sample
        history.sample()
        [point] = history.series()
        assert point["qps"] == pytest.approx(1.0)

    def test_error_rate_denominator_is_requests(self):
        # Errored requests never reach queries_served: 5 served + 5
        # errored = 10 requests, half of which failed.
        clock, metrics = FakeClock(), StubMetrics()
        history = make_history(clock, metrics)
        history.sample()
        metrics.queries += 5
        metrics.errors += 5
        clock.advance(1.0)
        history.sample()
        [point] = history.series()
        assert point["error_rate"] == pytest.approx(0.5)
        assert point["eps"] == pytest.approx(5.0)

    def test_latest_is_newest_pair(self):
        clock, metrics = FakeClock(), StubMetrics()
        history = make_history(clock, metrics)
        assert history.latest() is None
        history.sample()
        assert history.latest() is None  # one tick: no pair yet
        for step in (3, 7):
            metrics.queries += step
            clock.advance(1.0)
            history.sample()
        assert history.latest()["qps"] == pytest.approx(7.0)


class TestRingWrap:
    def test_rates_stay_exact_across_wrap(self):
        clock, metrics = FakeClock(), StubMetrics()
        history = make_history(clock, metrics, capacity=4)
        for i in range(20):
            metrics.queries += i  # a distinct rate every interval
            clock.advance(1.0)
            history.sample()
        ticks = history.ticks()
        assert len(ticks) == 4  # ring wrapped many times over
        points = history.series()
        assert len(points) == 3
        # Every surviving pair still derives its own exact delta (the
        # i-th sample added i queries over 1s): recompute expectations
        # straight from the retained ticks' absolute counters.
        assert [p["qps"] for p in points] == [
            pytest.approx(17.0),
            pytest.approx(18.0),
            pytest.approx(19.0),
        ]
        for prev, cur, point in zip(ticks, ticks[1:], points):
            expected = (cur["queries_served"] - prev["queries_served"]) / (
                cur["t"] - prev["t"]
            )
            assert point["qps"] == pytest.approx(expected)

    def test_window_includes_anchor_tick_before_edge(self):
        clock, metrics = FakeClock(), StubMetrics()
        history = make_history(clock, metrics)
        for _ in range(10):
            metrics.queries += 2
            clock.advance(1.0)
            history.sample()
        # A 3s window ending at the newest tick covers 4 ticks (both
        # endpoints inclusive); the anchor tick before the edge gives
        # each of them a predecessor -> 4 points, not 3.
        assert len(history.series(3.0)) == 4
        # The whole ring: 10 ticks -> 9 pairs (no anchor before t0).
        assert len(history.series()) == 9


class TestCollectorLifecycle:
    def test_restart_resumes_against_same_counters(self):
        clock, metrics = FakeClock(), StubMetrics()
        history = make_history(clock, metrics)
        history.sample()
        metrics.queries += 4
        clock.advance(2.0)
        history.sample()
        # "Stop" (no thread involved — manual sampling), then resume
        # much later: the first new tick pairs with the last old one and
        # the rate averages over the real 8s gap.
        metrics.queries += 8
        clock.advance(8.0)
        history.sample()
        points = history.series()
        assert [p["qps"] for p in points] == [
            pytest.approx(2.0),
            pytest.approx(1.0),
        ]

    def test_thread_start_stop_restart(self):
        metrics = StubMetrics()
        history = MetricsHistory(metrics, interval_s=0.05)
        history.start()
        assert history.running
        deadline = time.time() + 5.0
        while len(history.ticks()) < 3 and time.time() < deadline:
            time.sleep(0.02)
        assert len(history.ticks()) >= 3
        history.stop()
        assert not history.running
        retained = len(history.ticks())
        assert retained >= 3  # the ring survives a stop
        history.start()  # restartable
        assert history.running
        history.stop()
        assert len(history.ticks()) >= retained + 1  # immediate first tick

    def test_fresh_metrics_sink_cannot_go_negative(self):
        clock = FakeClock()
        metrics = StubMetrics()
        history = make_history(clock, metrics)
        metrics.queries = 100
        history.sample()
        metrics.queries = 0  # counters swapped/reset under us
        clock.advance(1.0)
        history.sample()
        [point] = history.series()
        assert point["qps"] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MetricsHistory(StubMetrics(), interval_s=0)
        with pytest.raises(ValueError):
            MetricsHistory(StubMetrics(), capacity=1)
        with pytest.raises(ValueError):
            MetricsHistory(StubMetrics(), max_families=0)

    def test_family_rows_bounded_to_busiest(self):
        clock, metrics = FakeClock(), StubMetrics()
        history = make_history(clock, metrics, max_families=2)
        metrics.families = {
            f"fam{i}": {"queries": i, "hit_rate": 0.0} for i in range(6)
        }
        tick = history.sample()
        assert set(tick["families"]) == {"fam5", "fam4"}

    def test_gauges_callable_rides_along_and_never_kills_tick(self):
        clock = FakeClock()
        calls = {"n": 0}

        def gauges():
            calls["n"] += 1
            if calls["n"] == 2:
                raise RuntimeError("probe blew up")
            return {"pending_families": {"email|gamma=5": 3}}

        history = make_history(clock, gauges=gauges)
        tick = history.sample()
        assert tick["gauges"]["pending_families"] == {"email|gamma=5": 3}
        clock.advance(1.0)
        tick = history.sample()  # the raising probe drops the key only
        assert "gauges" not in tick
        assert history.sample_errors == 1


class TestSLO:
    def test_parse_slo(self):
        slo = parse_slo("p95_ms=50,err_rate=0.01,window_s=30")
        assert slo.p95_ms == 50.0
        assert slo.err_rate == 0.01
        assert slo.window_s == 30.0
        assert parse_slo("err_rate=0.1").window_s == 60.0

    @pytest.mark.parametrize(
        "spec",
        ["", "window_s=10", "p95=50", "p95_ms=abc", "p95_ms=50,bogus=1"],
    )
    def test_parse_slo_rejects(self, spec):
        with pytest.raises(ValueError):
            parse_slo(spec)

    def test_slo_validation(self):
        with pytest.raises(ValueError):
            SLO(p95_ms=-1)
        with pytest.raises(ValueError):
            SLO(err_rate=1.5)
        with pytest.raises(ValueError):
            SLO(p95_ms=10, window_s=0)

    def test_no_data_holds(self):
        status = SLO(p95_ms=10, err_rate=0.01).evaluate([])
        assert status["ok"]
        assert status["objectives"]["p95_ms"]["value"] is None
        assert status["objectives"]["err_rate"]["value"] is None

    def test_breach_and_recovery_transitions(self):
        clock, metrics = FakeClock(), StubMetrics()
        history = make_history(
            clock, metrics, slo=SLO(err_rate=0.4, window_s=2.0)
        )
        history.sample()  # baseline, ok
        metrics.errors += 10  # all requests fail -> breach
        clock.advance(1.0)
        history.sample()
        status = history.slo_status()
        assert not status["ok"]
        assert history.breach_count == 1
        assert [e["event"] for e in history.breaches()] == ["breach"]
        # Window slides past the failures; good traffic recovers it.
        for _ in range(4):
            metrics.queries += 10
            clock.advance(1.0)
            history.sample()
        status = history.slo_status()
        assert status["ok"]
        assert history.breach_count == 1  # counts transitions, not ticks
        events = [e["event"] for e in history.breaches()]
        assert events == ["breach", "recovered"]

    def test_p95_objective_reads_latest_gauge(self):
        clock, metrics = FakeClock(), StubMetrics()
        history = make_history(clock, metrics, slo=SLO(p95_ms=10.0))
        metrics.latency = {"p50": 3.0, "p95": 25.0, "p99": 40.0}
        history.sample()
        status = history.slo_status()
        assert not status["ok"]
        assert status["objectives"]["p95_ms"]["value"] == 25.0
        metrics.latency = {"p50": 2.0, "p95": 4.0, "p99": 9.0}
        clock.advance(1.0)
        history.sample()
        assert history.slo_status()["ok"]

    def test_document_payload_shape(self):
        clock, metrics = FakeClock(), StubMetrics()
        history = make_history(clock, metrics, slo=SLO(err_rate=0.5))
        history.sample()
        clock.advance(1.0)
        history.sample()
        doc = history.document(60.0)
        assert doc["window_s"] == 60.0
        assert len(doc["points"]) == 1
        assert doc["breach_count"] == 0
        assert doc["slo"] == {"window_s": 60.0, "err_rate": 0.5}
        assert doc["slo_status"]["ok"]


class TestAgainstRealMetrics:
    def test_samples_real_service_metrics(self):
        clock = FakeClock()
        metrics = ServiceMetrics()
        history = MetricsHistory(metrics, clock=clock)
        history.sample()
        for _ in range(8):
            metrics.observe_query("localsearch-p", 2.0, "cold")
        for _ in range(2):
            metrics.observe_query("localsearch-p", 0.1, "cache")
        metrics.observe_error(kind="ValueError")
        clock.advance(2.0)
        tick = history.sample()
        assert tick["queries_served"] == 10
        assert tick["latency_overall_ms"]["p95"] is not None
        [point] = history.series()
        assert point["qps"] == pytest.approx(5.0)
        assert point["hit_rate"] == pytest.approx(0.2)
        assert point["error_rate"] == pytest.approx(1 / 11)


class TestFamilyPhasesPropagation:
    def test_phases_ride_along_and_derived_points_are_copies(self):
        clock, metrics = FakeClock(), StubMetrics()
        history = make_history(clock, metrics)
        metrics.families = {
            "email|gamma=5": {
                "queries": 1,
                "p95_ms": 2.0,
                "phases_ms": {"peel": 1.0, "enumerate": 0.5},
            }
        }
        history.sample()
        clock.advance(1.0)
        metrics.queries = 1
        history.sample()
        [point] = history.series()
        row = point["families"]["email|gamma=5"]
        assert row["phases_ms"] == {"peel": 1.0, "enumerate": 0.5}
        # Scribbling on the derived point never reaches the tick ring.
        row["phases_ms"]["poisoned"] = 1
        tick_row = history.ticks()[-1]["families"]["email|gamma=5"]
        assert "poisoned" not in tick_row["phases_ms"]
