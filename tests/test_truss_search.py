"""Influential γ-truss community search tests (Section 5.2)."""

from __future__ import annotations

import pytest

from repro import (
    LocalSearchTruss,
    global_search_truss,
    top_k_truss_communities,
)
from repro.core.reference import reference_truss_communities
from repro.core.truss_search import (
    construct_cvs_truss,
    enumerate_truss_top_k,
)
from repro.errors import QueryParameterError
from repro.graph.builder import graph_from_arrays
from repro.graph.subgraph import PrefixView
from tests.conftest import random_graph


def truss_pairs(result):
    return [
        (c.influence, frozenset(c.iter_edges())) for c in result.communities
    ]


class TestValidation:
    def test_gamma_below_two(self, fig3):
        with pytest.raises(QueryParameterError):
            LocalSearchTruss(fig3, gamma=1)
        with pytest.raises(QueryParameterError):
            construct_cvs_truss(PrefixView.whole(fig3), 1)

    def test_bad_delta(self, fig3):
        with pytest.raises(QueryParameterError):
            LocalSearchTruss(fig3, gamma=3, delta=1.0)

    def test_bad_k(self, fig3):
        with pytest.raises(QueryParameterError):
            LocalSearchTruss(fig3, gamma=3).search(0)


class TestCountICC:
    def test_k4(self):
        g = graph_from_arrays(
            4, [(i, j) for i in range(4) for j in range(i + 1, 4)]
        )
        record = construct_cvs_truss(PrefixView.whole(g), 4)
        assert record.num_communities == 1
        assert record.keys == [3]
        assert len(record.group(0)) == 6  # all K4 edges in the group

    def test_two_triangles(self):
        g = graph_from_arrays(6, [(0, 1), (0, 2), (1, 2),
                                  (3, 4), (3, 5), (4, 5)])
        record = construct_cvs_truss(PrefixView.whole(g), 3)
        assert record.keys == [5, 2]

    def test_cvs_partitions_edges(self, fig3):
        record = construct_cvs_truss(PrefixView.whole(fig3), 3)
        assert len(set(record.cvs)) == len(record.cvs)
        rebuilt = []
        for i in range(len(record.keys)):
            rebuilt.extend(record.group(i))
        assert rebuilt == record.cvs

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("gamma", [3, 4])
    def test_count_matches_reference(self, seed, gamma):
        g = random_graph(14, 0.4, seed, weights="shuffled")
        expected = len(reference_truss_communities(g, gamma))
        record = construct_cvs_truss(PrefixView.whole(g), gamma)
        assert record.num_communities == expected


class TestEnumICC:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("gamma", [3, 4])
    def test_edge_sets_match_reference(self, seed, gamma):
        g = random_graph(14, 0.4, seed, weights="shuffled")
        record = construct_cvs_truss(PrefixView.whole(g), gamma)
        got = [
            (c.influence, frozenset(c.iter_edges()))
            for c in enumerate_truss_top_k(g, record)
        ]
        assert got == reference_truss_communities(g, gamma)

    def test_vertex_counts(self, fig3):
        record = construct_cvs_truss(PrefixView.whole(fig3), 3)
        for community in enumerate_truss_top_k(fig3, record):
            endpoints = {
                v for edge in community.iter_edges() for v in edge
            }
            assert community.num_vertices == len(endpoints)
            assert community.num_edges == len(list(community.iter_edges()))

    def test_keynode_is_min_weight(self, fig3):
        record = construct_cvs_truss(PrefixView.whole(fig3), 3)
        for community in enumerate_truss_top_k(fig3, record):
            assert max(community.vertex_ranks) == community.keynode


class TestLocalVsGlobal:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("gamma", [3, 4])
    @pytest.mark.parametrize("k", [1, 3])
    def test_local_equals_global(self, seed, gamma, k):
        g = random_graph(16, 0.4, seed, weights="shuffled")
        local = top_k_truss_communities(g, k=k, gamma=gamma)
        global_ = global_search_truss(g, k, gamma)
        assert truss_pairs(local) == truss_pairs(global_)

    def test_local_accesses_less(self, email_graph):
        local = LocalSearchTruss(email_graph, gamma=5).search(5)
        global_ = global_search_truss(email_graph, 5, 5)
        assert (
            local.stats.accessed_size < global_.stats.accessed_size
        )

    def test_fewer_than_k(self, triangle):
        result = top_k_truss_communities(triangle, k=5, gamma=3)
        assert len(result.communities) == 1

    def test_no_truss_communities(self, triangle):
        result = top_k_truss_communities(triangle, k=1, gamma=4)
        assert result.communities == []


class TestTrussVsCore:
    def test_truss_implies_core_containment(self, fig3):
        """Remark of Eval-IX: an influential γ-truss community with
        influence tau lies inside a (γ-1)-community with influence <= tau
        ... specifically its members all live in the (γ-1)-core of
        G>=tau."""
        from repro.graph.core_decomposition import gamma_core
        from repro.graph.subgraph import PrefixView as PV

        gamma = 3
        result = top_k_truss_communities(fig3, k=3, gamma=gamma)
        for community in result.communities:
            view = PV(fig3, community.keynode + 1)
            alive, _ = gamma_core(view, gamma - 1)
            assert all(alive[r] for r in community.vertex_ranks)

    def test_gamma2_truss_equals_components(self):
        g = graph_from_arrays(5, [(0, 1), (1, 2), (3, 4)])
        result = top_k_truss_communities(g, k=5, gamma=2)
        # gamma=2 truss communities = connected prefixes' components.
        assert len(result.communities) >= 2
