"""Dataset-scale integration tests: all pieces working together.

Unit tests validate each module against oracles on small graphs; these
tests run the full pipelines on the (smallest) Table-1 stand-in and check
cross-algorithm agreement and the structural guarantees end to end.
"""

from __future__ import annotations

import pytest

from repro import (
    LocalSearch,
    LocalSearchP,
    top_k_influential_communities,
    top_k_noncontainment_communities,
    top_k_truss_communities,
)
from repro.baselines import (
    ICPIndex,
    backward,
    forward,
    forward_noncontainment,
    online_all,
)
from repro.core.truss_search import global_search_truss


@pytest.mark.parametrize("k,gamma", [(1, 5), (5, 10), (20, 10), (10, 15)])
class TestFiveWayAgreement:
    def test_all_top_k_algorithms_agree(self, email_graph, k, gamma):
        expected = top_k_influential_communities(
            email_graph, k=k, gamma=gamma
        )
        pairs = [
            (c.influence, frozenset(c.vertex_ranks))
            for c in expected.communities
        ]
        for runner in (
            lambda: LocalSearchP(email_graph, gamma=gamma).run(k=k),
            lambda: forward(email_graph, k, gamma),
            lambda: online_all(email_graph, k, gamma),
            lambda: backward(email_graph, k, gamma),
        ):
            result = runner()
            assert [
                (c.influence, frozenset(c.vertex_ranks))
                for c in result.communities
            ] == pairs


class TestStructuralGuarantees:
    def test_every_community_is_valid(self, email_graph):
        gamma = 8
        result = top_k_influential_communities(email_graph, k=25, gamma=gamma)
        for community in result.communities:
            assert community.min_degree() >= gamma
            ranks = community.vertex_ranks
            assert max(ranks) == community.keynode
            assert community.influence == email_graph.weight(
                community.keynode
            )

    def test_progressive_prefix_of_full_enumeration(self, email_graph):
        full = LocalSearchP(email_graph, gamma=10).run().influences
        partial = LocalSearchP(email_graph, gamma=10).run(k=30).influences
        assert partial == full[:30]

    def test_nc_communities_disjoint_and_valid(self, email_graph):
        result = top_k_noncontainment_communities(email_graph, k=5, gamma=5)
        seen = set()
        for community in result.communities:
            members = set(community.vertex_ranks)
            assert not (members & seen)
            seen |= members
            assert community.min_degree() >= 5

    def test_nc_agrees_with_forward_nc(self, email_graph):
        local = top_k_noncontainment_communities(email_graph, k=5, gamma=5)
        global_ = forward_noncontainment(email_graph, 5, 5)
        assert local.influences == global_.influences

    def test_truss_local_equals_global(self, email_graph):
        local = top_k_truss_communities(email_graph, 5, 6)
        global_ = global_search_truss(email_graph, 5, 6)
        assert local.influences == global_.influences
        for a, b in zip(local.communities, global_.communities):
            assert sorted(a.iter_edges()) == sorted(b.iter_edges())

    def test_truss_nested_in_core_community(self, email_graph):
        """Section 6 remark: gamma-truss communities live inside
        (gamma-1)-communities of the same influence."""
        from repro.graph.connectivity import component_of
        from repro.graph.core_decomposition import gamma_core
        from repro.graph.subgraph import PrefixView

        gamma = 6
        result = top_k_truss_communities(email_graph, 3, gamma)
        for community in result.communities:
            view = PrefixView(email_graph, community.keynode + 1)
            alive, _ = gamma_core(view, gamma - 1)
            enclosing = set(
                component_of(view, community.keynode, alive)
            )
            assert set(community.vertex_ranks) <= enclosing


class TestIndexConsistency:
    def test_index_matches_online_across_gammas(self, email_graph):
        index = ICPIndex(email_graph).build(gammas=[5, 10, 15])
        for gamma in (5, 10, 15):
            online = top_k_influential_communities(
                email_graph, k=8, gamma=gamma
            )
            indexed = index.query(8, gamma)
            assert [c.influence for c in indexed] == online.influences


class TestStatsAccounting:
    def test_locality_improves_with_smaller_k(self, email_graph):
        sizes = []
        for k in (1, 5, 25, 100):
            result = LocalSearch(email_graph, gamma=10).search(k)
            sizes.append(result.stats.accessed_size)
        assert sizes == sorted(sizes)

    def test_deeper_gamma_needs_deeper_prefix(self, email_graph):
        shallow = LocalSearch(email_graph, gamma=5).search(10)
        deep = LocalSearch(email_graph, gamma=15).search(10)
        assert (
            deep.stats.accessed_size >= shallow.stats.accessed_size
        )

    def test_counts_are_monotone_over_rounds(self, email_graph):
        result = LocalSearch(email_graph, gamma=12).search(50)
        counts = result.stats.counts
        assert counts == sorted(counts)
