"""Signal extraction: windowed deltas that survive the history ring.

:func:`extract_signals` reads the raw cumulative-counter ticks that
:class:`MetricsHistory` retains, so these FakeClock tests pin the three
robustness properties the control plane inherits from that design: exact
deltas across ring wrap, real-dt rates across a collector restart gap,
and clamped (never negative) deltas across a counter reset.
"""

from __future__ import annotations

import pytest

from repro.control.signals import ControlSignals, extract_signals
from repro.obs.history import MetricsHistory


class FakeClock:
    """A manually-advanced timestamp source."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class StubMetrics:
    """A snapshot()-shaped stub with directly settable counters."""

    def __init__(self) -> None:
        self.queries = 0
        self.batches = 0
        self.batched = 0
        self.queue_depth = 0
        self.idle_dispatches = 0
        self.workers = {}
        self.families = {}
        self.graphs = {}
        self.latency = {}

    def snapshot(self):
        return {
            "queries_served": self.queries,
            "errors": 0,
            "by_source": {},
            "server": {
                "batches": self.batches,
                "batched_queries": self.batched,
                "queue_depth": self.queue_depth,
                "replica_idle_dispatches": self.idle_dispatches,
            },
            "cluster": {"queue_depth": dict(self.workers)},
            "by_family": {
                label: dict(row) for label, row in self.families.items()
            },
            "by_graph": dict(self.graphs),
            "latency_overall_ms": dict(self.latency),
        }


def make_history(clock, metrics, **kwargs):
    return MetricsHistory(metrics, clock=clock, **kwargs)


# ----------------------------------------------------------------------
# evidence threshold
# ----------------------------------------------------------------------
def test_fewer_than_two_ticks_yields_no_signals():
    clock, metrics = FakeClock(), StubMetrics()
    history = make_history(clock, metrics)
    assert extract_signals(history.ticks()) is None
    history.sample()
    assert extract_signals(history.ticks()) is None  # one tick: no pair


def test_zero_elapsed_time_yields_no_signals():
    clock, metrics = FakeClock(), StubMetrics()
    history = make_history(clock, metrics)
    history.sample()
    metrics.queries += 5
    history.sample()  # clock never advanced
    assert extract_signals(history.ticks()) is None


# ----------------------------------------------------------------------
# windowed deltas
# ----------------------------------------------------------------------
def test_rates_are_window_deltas_over_real_dt():
    clock, metrics = FakeClock(), StubMetrics()
    history = make_history(clock, metrics)
    history.sample()
    metrics.queries += 20
    metrics.batches += 4
    metrics.batched += 16
    metrics.idle_dispatches += 6
    metrics.queue_depth = 3
    clock.advance(4.0)
    history.sample()
    signals = extract_signals(history.ticks())
    assert signals.qps == pytest.approx(5.0)
    assert signals.window_s == pytest.approx(4.0)
    # 16 batched queries over 4 batches: 12 rode along.
    assert signals.coalesce_rate == pytest.approx(0.75)
    assert signals.replica_idle_per_s == pytest.approx(1.5)
    assert signals.queue_depth == 3
    assert signals.queue_depth_peak == 3


def test_queue_depth_peak_is_max_over_all_ticks_not_endpoints():
    clock, metrics = FakeClock(), StubMetrics()
    history = make_history(clock, metrics)
    for depth in (0, 7, 1):
        metrics.queue_depth = depth
        history.sample()
        clock.advance(1.0)
    signals = extract_signals(history.ticks())
    assert signals.queue_depth == 1  # the newest tick's gauge
    assert signals.queue_depth_peak == 7  # the mid-window spike


def test_coalesce_rate_is_zero_without_batched_queries():
    clock, metrics = FakeClock(), StubMetrics()
    history = make_history(clock, metrics)
    history.sample()
    metrics.queries += 3
    clock.advance(1.0)
    history.sample()
    assert extract_signals(history.ticks()).coalesce_rate == 0.0


def test_family_signals_carry_demand_and_p95_trajectory():
    clock, metrics = FakeClock(), StubMetrics()
    history = make_history(clock, metrics)
    metrics.families = {
        "wiki|g10|localsearch-p|d2|auto": {"queries": 10, "p95_ms": 4.0}
    }
    history.sample()
    metrics.families = {
        "wiki|g10|localsearch-p|d2|auto": {"queries": 25, "p95_ms": 9.0},
        # Entered mid-window: contributes its full count.
        "web|g5|localsearch-p|d2|auto": {"queries": 7, "p95_ms": 2.0},
    }
    clock.advance(2.0)
    history.sample()
    signals = extract_signals(history.ticks())
    wiki = signals.families["wiki|g10|localsearch-p|d2|auto"]
    assert wiki.graph == "wiki"
    assert wiki.queries == 15
    assert wiki.p95_ms == pytest.approx(9.0)
    assert wiki.p95_start_ms == pytest.approx(4.0)
    web = signals.families["web|g5|localsearch-p|d2|auto"]
    assert web.queries == 7
    assert web.p95_start_ms is None  # no baseline yet
    assert signals.graph_demand() == {"wiki": 15, "web": 7}


def test_graph_demand_survives_family_table_truncation():
    # The pathology: demand spread across many short-lived families.
    # Each tick keeps only the all-time-busiest family rows, so a new
    # hot graph whose queries never repeat a family is invisible to the
    # family view — the untruncated per-graph counters must carry it.
    clock, metrics = FakeClock(), StubMetrics()
    history = make_history(clock, metrics, max_families=2)
    metrics.graphs = {"a": 10}
    metrics.families = {
        "a|g1|localsearch-p|d2|auto": {"queries": 5, "p95_ms": 1.0},
        "a|g2|localsearch-p|d2|auto": {"queries": 5, "p95_ms": 1.0},
    }
    history.sample()
    # This window: all new demand is graph b, one query per family.
    metrics.queries += 8
    metrics.graphs = {"a": 10, "b": 8}
    for i in range(8):
        metrics.families[f"b|g{i}|localsearch-p|d2|auto"] = {
            "queries": 1,
            "p95_ms": 1.0,
        }
    clock.advance(2.0)
    history.sample()
    signals = extract_signals(history.ticks())
    # The truncated family view still shows only graph a's stale rows...
    assert {s.graph for s in signals.families.values()} == {"a"}
    # ...but per-graph demand sees the flip exactly.
    assert signals.graph_demand() == {"b": 8}


# ----------------------------------------------------------------------
# ring wrap
# ----------------------------------------------------------------------
def test_deltas_stay_exact_across_ring_wrap():
    clock, metrics = FakeClock(), StubMetrics()
    history = make_history(clock, metrics, capacity=4)
    for _ in range(20):
        metrics.queries += 3
        metrics.idle_dispatches += 1
        clock.advance(1.0)
        history.sample()
    ticks = history.ticks()
    assert len(ticks) == 4  # the ring dropped the first 16
    signals = extract_signals(ticks)
    # Cumulative counters make the surviving window exact: 3 qps over
    # the 3 seconds the remaining 4 ticks span.
    assert signals.window_s == pytest.approx(3.0)
    assert signals.qps == pytest.approx(3.0)
    assert signals.replica_idle_per_s == pytest.approx(1.0)


# ----------------------------------------------------------------------
# collector restart
# ----------------------------------------------------------------------
def test_collector_restart_gap_widens_dt_instead_of_spiking_rates():
    clock, metrics = FakeClock(), StubMetrics()
    history = make_history(clock, metrics)
    history.sample()
    # Collector down for 30s while traffic continued: the counters kept
    # accumulating, the rate divides by the observed gap.
    metrics.queries += 30
    clock.advance(30.0)
    history.sample()
    signals = extract_signals(history.ticks())
    assert signals.qps == pytest.approx(1.0)
    assert signals.window_s == pytest.approx(30.0)


# ----------------------------------------------------------------------
# counter reset
# ----------------------------------------------------------------------
def test_counter_reset_reads_as_a_quiet_window_not_negative_rates():
    clock, metrics = FakeClock(), StubMetrics()
    history = make_history(clock, metrics)
    metrics.queries = 500
    metrics.batches = 50
    metrics.batched = 200
    metrics.idle_dispatches = 40
    metrics.families = {
        "g|g3|localsearch-p|d2|auto": {"queries": 90, "p95_ms": 1.0}
    }
    metrics.graphs = {"g": 90}
    history.sample()
    # The sink was swapped: everything restarts from (nearly) zero.
    metrics.queries = 4
    metrics.batches = 1
    metrics.batched = 2
    metrics.idle_dispatches = 0
    metrics.families = {
        "g|g3|localsearch-p|d2|auto": {"queries": 2, "p95_ms": 1.0}
    }
    metrics.graphs = {"g": 2}
    clock.advance(2.0)
    history.sample()
    signals = extract_signals(history.ticks())
    assert signals.qps == 0.0
    assert signals.coalesce_rate == 0.0
    assert signals.replica_idle_per_s == 0.0
    assert signals.families["g|g3|localsearch-p|d2|auto"].queries == 0
    assert signals.graph_demand() == {}  # clamped, not negative


def test_signals_read_real_server_tick_shape():
    # The frozen dataclass is constructible straight from the fields the
    # policies read (a guard against field drift).
    signals = ControlSignals(
        t=1.0,
        window_s=1.0,
        qps=2.0,
        coalesce_rate=0.5,
        queue_depth=1,
        queue_depth_peak=2,
        replica_idle_per_s=0.0,
    )
    assert signals.graph_demand() == {}
    with pytest.raises(AttributeError):
        signals.qps = 3.0
