"""WarmStart: snapshot/restore fidelity, staleness, and resilience."""

from __future__ import annotations

import json

from repro.graph.builder import graph_from_arrays
from repro.server import WarmStart
from repro.service import (
    GraphRegistry,
    QueryEngine,
    ResultCache,
    TopKQuery,
)
from repro.service.cache import ProgressiveEntry


def layered_cliques(num_cliques=6):
    edges = []
    for c in range(num_cliques):
        base = 4 * c
        for i in range(4):
            for j in range(i + 1, 4):
                edges.append((base + i, base + j))
    return graph_from_arrays(4 * num_cliques, edges)


def make_registry():
    registry = GraphRegistry(preload_datasets=False)
    registry.register("cliques", layered_cliques)
    return registry


def test_progressive_roundtrip_serves_identical_views(tmp_path):
    path = tmp_path / "snap.json"
    registry = make_registry()
    cache = ResultCache()
    engine = QueryEngine(registry, cache=cache)
    original = engine.execute(TopKQuery(graph="cliques", gamma=3, k=4))
    assert WarmStart(str(path)).save(cache, registry) == 1

    registry2 = make_registry()
    cache2 = ResultCache()
    restored = WarmStart(str(path)).load(cache2, registry2)
    assert restored == 1
    engine2 = QueryEngine(registry2, cache=cache2)

    # Prefix: pure slice, byte-identical, no recomputation.
    warm = engine2.execute(TopKQuery(graph="cliques", gamma=3, k=3))
    assert warm.source == "cache"
    assert warm.communities == original.communities[:3]

    # Extension beyond the snapshot: rebuilt cursor, identical stream.
    extended = engine2.execute(TopKQuery(graph="cliques", gamma=3, k=6))
    assert extended.source == "extended"
    reference = QueryEngine(registry2, cache=None).execute(
        TopKQuery(graph="cliques", gamma=3, k=6)
    )
    assert extended.communities == reference.communities


def test_exhausted_entry_restores_as_complete(tmp_path):
    path = tmp_path / "snap.json"
    registry = make_registry()
    cache = ResultCache()
    engine = QueryEngine(registry, cache=cache)
    result = engine.execute(TopKQuery(graph="cliques", gamma=3, k=50))
    assert result.complete and len(result.communities) == 6
    WarmStart(str(path)).save(cache, registry)

    registry2 = make_registry()
    cache2 = ResultCache()
    WarmStart(str(path)).load(cache2, registry2)
    engine2 = QueryEngine(registry2, cache=cache2)
    again = engine2.execute(TopKQuery(graph="cliques", gamma=3, k=50))
    assert again.source == "cache"
    assert again.complete
    assert again.communities == result.communities


def test_static_entry_roundtrip(tmp_path):
    path = tmp_path / "snap.json"
    registry = make_registry()
    cache = ResultCache()
    engine = QueryEngine(registry, cache=cache)
    original = engine.execute(
        TopKQuery(graph="cliques", gamma=3, k=4, algorithm="onlineall")
    )
    WarmStart(str(path)).save(cache, registry)

    registry2 = make_registry()
    cache2 = ResultCache()
    assert WarmStart(str(path)).load(cache2, registry2) == 1
    engine2 = QueryEngine(registry2, cache=cache2)
    warm = engine2.execute(
        TopKQuery(graph="cliques", gamma=3, k=4, algorithm="onlineall")
    )
    assert warm.source == "cache"
    assert warm.communities == original.communities


def test_stale_graph_version_boots_cold(tmp_path):
    path = tmp_path / "snap.json"
    registry = make_registry()
    registry.reload("cliques")  # version 1 -> built
    registry.reload("cliques")  # version 2: snapshot keys on v2
    cache = ResultCache()
    engine = QueryEngine(registry, cache=cache)
    engine.execute(TopKQuery(graph="cliques", gamma=3, k=3))
    WarmStart(str(path)).save(cache, registry)

    registry2 = make_registry()  # fresh: first build is version 1 != 2
    cache2 = ResultCache()
    assert WarmStart(str(path)).load(cache2, registry2) == 0
    assert len(cache2) == 0


def test_unregistered_graph_is_skipped(tmp_path):
    path = tmp_path / "snap.json"
    registry = make_registry()
    cache = ResultCache()
    QueryEngine(registry, cache=cache).execute(
        TopKQuery(graph="cliques", gamma=3, k=2)
    )
    WarmStart(str(path)).save(cache, registry)

    empty_registry = GraphRegistry(preload_datasets=False)
    cache2 = ResultCache()
    assert WarmStart(str(path)).load(cache2, empty_registry) == 0


def test_live_entries_are_never_clobbered(tmp_path):
    path = tmp_path / "snap.json"
    registry = make_registry()
    cache = ResultCache()
    engine = QueryEngine(registry, cache=cache)
    engine.execute(TopKQuery(graph="cliques", gamma=3, k=2))
    WarmStart(str(path)).save(cache, registry)

    # Same registry/cache: the key already holds a live entry.
    key = cache.keys()[0]
    live = cache.get(key)
    assert WarmStart(str(path)).load(cache, registry) == 0
    assert cache.get(key) is live


def test_missing_corrupt_and_mismatched_files_boot_cold(tmp_path):
    registry = make_registry()
    cache = ResultCache()
    assert WarmStart(str(tmp_path / "absent.json")).load(cache, registry) == 0

    corrupt = tmp_path / "corrupt.json"
    corrupt.write_text("{not json", encoding="utf-8")
    assert WarmStart(str(corrupt)).load(cache, registry) == 0

    wrong_format = tmp_path / "wrong.json"
    wrong_format.write_text(
        json.dumps({"format": 999, "entries": []}), encoding="utf-8"
    )
    assert WarmStart(str(wrong_format)).load(cache, registry) == 0


def test_malformed_entry_does_not_spoil_the_rest(tmp_path):
    path = tmp_path / "snap.json"
    registry = make_registry()
    cache = ResultCache()
    QueryEngine(registry, cache=cache).execute(
        TopKQuery(graph="cliques", gamma=3, k=2)
    )
    WarmStart(str(path)).save(cache, registry)
    document = json.loads(path.read_text(encoding="utf-8"))
    document["entries"].insert(0, {"kind": "progressive"})  # missing keys
    path.write_text(json.dumps(document), encoding="utf-8")

    registry2 = make_registry()
    cache2 = ResultCache()
    assert WarmStart(str(path)).load(cache2, registry2) == 1


def test_save_is_atomic_over_previous_snapshot(tmp_path):
    path = tmp_path / "snap.json"
    registry = make_registry()
    cache = ResultCache()
    QueryEngine(registry, cache=cache).execute(
        TopKQuery(graph="cliques", gamma=3, k=2)
    )
    warm = WarmStart(str(path))
    warm.save(cache, registry)
    first = path.read_text(encoding="utf-8")
    warm.save(cache, registry)
    assert path.read_text(encoding="utf-8") == first
    assert not (tmp_path / "snap.json.tmp").exists()


def test_restored_entry_respects_max_cached_k(tmp_path):
    path = tmp_path / "snap.json"
    registry = make_registry()
    cache = ResultCache()
    engine = QueryEngine(registry, cache=cache)
    engine.execute(TopKQuery(graph="cliques", gamma=3, k=5))
    WarmStart(str(path)).save(cache, registry)

    registry2 = make_registry()
    cache2 = ResultCache(max_cached_k=2)
    assert WarmStart(str(path)).load(cache2, registry2) == 1
    entry = cache2.get(cache2.keys()[0])
    assert isinstance(entry, ProgressiveEntry)
    engine2 = QueryEngine(registry2, cache=cache2)
    result = engine2.execute(TopKQuery(graph="cliques", gamma=3, k=5))
    assert len(result.communities) == 5
    # Served in full, but retention honours the cap.
    assert entry.materialized == 2


def test_restored_static_entry_respects_max_cached_k(tmp_path):
    path = tmp_path / "snap.json"
    registry = make_registry()
    cache = ResultCache()
    QueryEngine(registry, cache=cache).execute(
        TopKQuery(graph="cliques", gamma=3, k=5, algorithm="localsearch")
    )
    WarmStart(str(path)).save(cache, registry)

    registry2 = make_registry()
    cache2 = ResultCache(max_cached_k=2)
    assert WarmStart(str(path)).load(cache2, registry2) == 1
    entry = cache2.get(cache2.keys()[0])
    assert len(entry.views) == 2
    assert not entry.complete
    # Within the retained prefix: still a byte-identical hit.
    warm = QueryEngine(registry2, cache=cache2).execute(
        TopKQuery(graph="cliques", gamma=3, k=2, algorithm="localsearch")
    )
    assert warm.source == "cache"
    reference = QueryEngine(registry2, cache=None).execute(
        TopKQuery(graph="cliques", gamma=3, k=2, algorithm="localsearch")
    )
    assert warm.communities == reference.communities


def test_changed_data_same_version_boots_cold(tmp_path):
    # The version counter is process-local (fresh boots all build v1);
    # the content fingerprint must catch the data changing between runs.
    path = tmp_path / "snap.json"
    registry = make_registry()
    cache = ResultCache()
    QueryEngine(registry, cache=cache).execute(
        TopKQuery(graph="cliques", gamma=3, k=3)
    )
    WarmStart(str(path)).save(cache, registry)

    changed = GraphRegistry(preload_datasets=False)
    changed.register("cliques", lambda: layered_cliques(4))  # smaller data
    cache2 = ResultCache()
    assert WarmStart(str(path)).load(cache2, changed) == 0
    assert len(cache2) == 0


def test_entries_stale_in_process_are_not_saved(tmp_path):
    path = tmp_path / "snap.json"
    registry = make_registry()
    cache = ResultCache()
    engine = QueryEngine(registry, cache=cache)
    engine.execute(TopKQuery(graph="cliques", gamma=3, k=2))  # keyed v1
    registry.reload("cliques")  # now v2: the cached entry is stale
    assert WarmStart(str(path)).save(cache, registry) == 0


class TestPeriodicSnapshots:
    """WarmStart(snapshot_interval=...): crash-surviving warm state."""

    def test_background_thread_snapshots_without_a_shutdown(self, tmp_path):
        import time

        path = tmp_path / "periodic.json"
        registry = make_registry()
        cache = ResultCache()
        engine = QueryEngine(registry, cache=cache)
        ws = WarmStart(str(path), snapshot_interval=0.05)
        assert ws.start_periodic(cache, registry)
        try:
            engine.execute(TopKQuery(graph="cliques", gamma=3, k=4))
            deadline = time.monotonic() + 10.0
            while not path.exists() and time.monotonic() < deadline:
                time.sleep(0.02)
            assert path.exists(), "no periodic snapshot appeared"
        finally:
            ws.stop_periodic()
        assert ws.periodic_snapshots >= 1
        # Simulated crash: no save() on shutdown — the periodic file
        # alone must boot the next process warm.
        registry2 = make_registry()
        cache2 = ResultCache()
        assert WarmStart(str(path)).load(cache2, registry2) >= 1
        warm = QueryEngine(registry2, cache=cache2).execute(
            TopKQuery(graph="cliques", gamma=3, k=4)
        )
        assert warm.source == "cache"

    def test_start_periodic_is_a_noop_without_interval(self, tmp_path):
        ws = WarmStart(str(tmp_path / "x.json"))
        assert not ws.start_periodic(ResultCache(), make_registry())
        ws.stop_periodic()  # idempotent on a never-started thread

    def test_bad_interval_rejected(self, tmp_path):
        import pytest

        with pytest.raises(ValueError):
            WarmStart(str(tmp_path / "x.json"), snapshot_interval=0.0)

    def test_server_wires_interval_and_requires_path(self, tmp_path):
        import asyncio

        import pytest

        from repro.server import ReproClient, ReproServer

        with pytest.raises(ValueError):
            ReproServer(registry=make_registry(), warmstart_interval=1.0)

        path = tmp_path / "server.json"

        async def main():
            server = ReproServer(
                registry=make_registry(),
                shards=1,
                warmstart_path=str(path),
                warmstart_interval=0.05,
            )
            await server.start(tcp=("127.0.0.1", 0))
            client = await ReproClient.connect(port=server.tcp_address[1])
            await client.request("query cliques k=3 gamma=3")
            deadline = asyncio.get_running_loop().time() + 10.0
            while not path.exists():
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.02)
            await client.close()
            assert server.warmstart is not None
            snapshots_before_stop = server.warmstart.periodic_snapshots
            await server.stop()
            assert server.warmstart._thread is None  # thread joined
            return snapshots_before_stop

        assert asyncio.run(main()) >= 1
