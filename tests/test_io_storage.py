"""I/O round-trips and the disk-resident edge store."""

from __future__ import annotations

import io
import os

import pytest

from repro.errors import GraphConstructionError, StorageError
from repro.graph.builder import graph_from_arrays
from repro.graph.io import (
    load_npz,
    load_snap_graph,
    read_edge_list,
    read_weights,
    save_npz,
    write_edge_list,
    write_weights,
)
from repro.graph.storage import (
    FileEdgeStore,
    IOCounter,
    InMemoryEdgeStore,
    edges_in_weight_order,
)


class TestEdgeListIO:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "g.txt"
        edges = [(0, 1), (1, 2), (2, 0)]
        write_edge_list(path, edges, header="test graph\nsecond line")
        assert read_edge_list(path) == edges

    def test_comments_and_blanks(self):
        text = "# comment\n\n% other comment\n1 2\n3\t4\n"
        assert read_edge_list(io.StringIO(text)) == [(1, 2), (3, 4)]

    def test_malformed_line(self):
        with pytest.raises(GraphConstructionError):
            read_edge_list(io.StringIO("1\n"))

    def test_non_integer(self):
        with pytest.raises(GraphConstructionError):
            read_edge_list(io.StringIO("a b\n"))


class TestWeightsIO:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "w.txt"
        weights = {0: 1.5, 1: 2.25, 7: 0.125}
        write_weights(path, weights)
        assert read_weights(path) == weights

    def test_malformed(self):
        with pytest.raises(GraphConstructionError):
            read_weights(io.StringIO("1 2 3\n"))


class TestSnapLoader:
    def test_with_weight_file(self, tmp_path):
        epath, wpath = tmp_path / "e.txt", tmp_path / "w.txt"
        write_edge_list(epath, [(10, 20), (20, 30)])
        write_weights(wpath, {10: 3.0, 20: 2.0, 30: 1.0})
        g = load_snap_graph(epath, wpath)
        assert g.num_vertices == 3
        assert g.rank_of(10) == 0

    def test_pagerank_default(self, tmp_path):
        epath = tmp_path / "e.txt"
        write_edge_list(epath, [(0, 1), (1, 2), (1, 3)])
        g = load_snap_graph(epath)
        assert g.rank_of(1) == 0  # the hub gets the top PageRank

    def test_drops_self_loops(self, tmp_path):
        epath = tmp_path / "e.txt"
        write_edge_list(epath, [(0, 0), (0, 1)])
        g = load_snap_graph(epath)
        assert g.num_edges == 1


class TestNpz:
    def test_round_trip(self, tmp_path):
        g = graph_from_arrays(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)],
                              weights=[5.0, 3.0, 4.0, 1.0, 2.0])
        path = tmp_path / "g.npz"
        save_npz(path, g)
        g2 = load_npz(path)
        assert g2.num_vertices == g.num_vertices
        assert g2.num_edges == g.num_edges
        assert sorted(g2.edges_as_labels()) == sorted(g.edges_as_labels())
        assert g2.weights_by_label() == g.weights_by_label()


class TestIOCounter:
    def test_block_accounting(self):
        counter = IOCounter(block_edges=100)
        counter.record_read(250)
        assert counter.edges_read == 250
        assert counter.blocks_read == 3
        counter.record_read(0)
        assert counter.blocks_read == 3

    def test_resident_gauge(self):
        counter = IOCounter()
        counter.record_resident(10)
        counter.record_resident(5)
        assert counter.resident_edges == 5
        assert counter.peak_resident_edges == 10


class TestInMemoryStore:
    def test_from_graph_order(self):
        g = graph_from_arrays(4, [(0, 1), (0, 3), (1, 2)])
        store = InMemoryEdgeStore.from_graph(g)
        edges = store.read_prefix(len(store))
        assert [u for u, _ in edges] == sorted(u for u, _ in edges)

    def test_bounds(self):
        store = InMemoryEdgeStore([(1, 0)])
        with pytest.raises(StorageError):
            store.read_range(0, 2)

    def test_order_validation(self):
        with pytest.raises(StorageError):
            InMemoryEdgeStore([(2, 0), (1, 0)])  # descending max rank
        with pytest.raises(StorageError):
            InMemoryEdgeStore([(0, 1)])  # wrong orientation

    def test_scan_chunks(self):
        store = InMemoryEdgeStore([(1, 0), (2, 0), (3, 1), (4, 2)])
        chunks = list(store.scan(chunk_edges=3))
        assert [len(c) for c in chunks] == [3, 1]
        assert store.counter.sequential_reads == 2


class TestFileStore:
    def test_round_trip(self, tmp_path):
        g = graph_from_arrays(6, [(0, 1), (1, 2), (2, 3), (0, 4), (4, 5)])
        path = tmp_path / "edges.bin"
        store = FileEdgeStore.create(path, g)
        assert store.num_edges == 5
        assert store.read_prefix(5) == list(edges_in_weight_order(g))

    def test_partial_reads_accounted(self, tmp_path):
        g = graph_from_arrays(6, [(0, 1), (1, 2), (2, 3), (0, 4), (4, 5)])
        path = tmp_path / "edges.bin"
        store = FileEdgeStore.create(path, g, IOCounter(block_edges=2))
        store.read_range(1, 4)
        assert store.counter.edges_read == 3
        assert store.counter.blocks_read == 2

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bogus.bin"
        path.write_bytes(b"NOTMAGIC" + b"\x00" * 8)
        with pytest.raises(StorageError):
            FileEdgeStore(path)

    def test_truncated_file(self, tmp_path):
        path = tmp_path / "short.bin"
        path.write_bytes(FileEdgeStore.MAGIC + b"\x00" * 5)
        with pytest.raises(StorageError):
            FileEdgeStore(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            FileEdgeStore(tmp_path / "nope.bin")

    def test_max_rank_column(self, tmp_path):
        g = graph_from_arrays(6, [(0, 1), (1, 2), (2, 3), (0, 4), (4, 5)])
        path = tmp_path / "edges.bin"
        store = FileEdgeStore.create(path, g)
        col = store.max_rank_column()
        assert col == sorted(col)
        assert len(col) == 5

    def test_prefix_stop_for_rank(self, tmp_path):
        g = graph_from_arrays(6, [(0, 1), (1, 2), (2, 3), (0, 4), (4, 5)])
        path = tmp_path / "edges.bin"
        store = FileEdgeStore.create(path, g)
        col = store.max_rank_column()
        # Edges entirely inside prefix p have max rank < p.
        assert store.prefix_stop_for_rank(2, col) == 1  # only (1,0)
        assert store.prefix_stop_for_rank(6, col) == 5
