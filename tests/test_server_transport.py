"""ReproServer transport: framing, session scoping, lifecycle, shutdown."""

from __future__ import annotations

import asyncio

import pytest

from repro.graph.builder import graph_from_arrays
from repro.server import ReproClient, ReproServer
from repro.server.transport import dot_stuff, dot_unstuff
from repro.service import GraphRegistry


def layered_cliques(num_cliques=6):
    edges = []
    for c in range(num_cliques):
        base = 4 * c
        for i in range(4):
            for j in range(i + 1, 4):
                edges.append((base + i, base + j))
    return graph_from_arrays(4 * num_cliques, edges)


def make_registry():
    registry = GraphRegistry(preload_datasets=False)
    registry.register("cliques", layered_cliques)
    return registry


def make_server(**kwargs):
    kwargs.setdefault("shards", 2)
    return ReproServer(make_registry(), **kwargs)


def run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
def test_dot_stuffing_roundtrip():
    for line in (".", "..", ".hidden", "plain", ""):
        assert dot_unstuff(dot_stuff(line)) == line
    assert dot_stuff(".") != "."  # the terminator can never appear raw


def test_tcp_query_and_graphs_commands():
    async def main():
        server = make_server()
        await server.start(tcp=("127.0.0.1", 0))
        host, port = server.tcp_address
        client = await ReproClient.connect(host, port=port)
        assert "1 graphs registered" in client.greeting[0]

        listing = await client.request("graphs")
        assert any("cliques" in line for line in listing)

        lines = await client.query("cliques", k=3, gamma=3)
        assert lines[0].startswith("localsearch-p[")
        assert len(lines) == 4
        assert lines[1].startswith("top-1:")

        errors = await client.request("query nosuch k=1")
        assert errors[0].startswith("error:")

        await client.close()
        await server.stop()

    run(main())


def test_unix_socket_transport(tmp_path):
    async def main():
        path = str(tmp_path / "repro.sock")
        server = make_server()
        await server.start(unix_path=path)
        client = await ReproClient.connect(unix_path=path)
        lines = await client.query("cliques", k=2, gamma=3)
        assert lines[1].startswith("top-1:")
        await client.close()
        await server.stop()
        import os

        assert not os.path.exists(path)  # socket file cleaned up

    run(main())


def test_sessions_are_scoped_per_connection():
    async def main():
        server = make_server()
        await server.start(tcp=("127.0.0.1", 0))
        host, port = server.tcp_address
        alice = await ReproClient.connect(host, port=port)
        bob = await ReproClient.connect(host, port=port)

        opened = await alice.request("session open cliques gamma=3")
        assert opened[0].startswith("session s1 open")

        # Bob cannot see or advance Alice's session.
        assert (await bob.request("sessions"))[0] == "(no active sessions)"
        stolen = await bob.request("session next s1")
        assert stolen[0].startswith("error:")

        # Alice still streams hers fine after Bob's poking.
        batch = await alice.request("session next s1 2")
        assert batch[0].startswith("top-1:")
        assert batch[1].startswith("top-2:")

        await alice.close()
        await bob.close()
        await server.stop()

    run(main())


def test_connection_drop_closes_its_sessions():
    async def main():
        server = make_server()
        await server.start(tcp=("127.0.0.1", 0))
        host, port = server.tcp_address
        client = await ReproClient.connect(host, port=port)
        await client.request("session open cliques gamma=3")
        assert server.metrics.sessions_opened == 1
        assert server.metrics.sessions_closed == 0
        await client.close()
        # Wait for the handler to finish its teardown.
        for _ in range(100):
            if server.metrics.sessions_closed:
                break
            await asyncio.sleep(0.01)
        assert server.metrics.sessions_closed == 1
        assert server.metrics.connections_closed >= 1
        await server.stop()

    run(main())


def test_abrupt_disconnect_leaves_server_healthy():
    async def main():
        server = make_server()
        await server.start(tcp=("127.0.0.1", 0))
        host, port = server.tcp_address

        reader, writer = await asyncio.open_connection(host, port)
        await reader.readline()  # part of the greeting
        writer.close()  # vanish without `quit`

        client = await ReproClient.connect(host, port=port)
        lines = await client.query("cliques", k=1, gamma=3)
        assert lines[1].startswith("top-1:")
        await client.close()
        await server.stop()

    run(main())


def test_shutdown_command_stops_the_whole_server():
    async def main():
        server = make_server()
        await server.start(tcp=("127.0.0.1", 0))
        host, port = server.tcp_address
        serve_task = asyncio.ensure_future(server.serve_until_shutdown())

        client = await ReproClient.connect(host, port=port)
        response = await client.request("shutdown")
        assert response == ["shutting down"]
        await asyncio.wait_for(serve_task, timeout=10.0)

        with pytest.raises(OSError):
            await ReproClient.connect(host, port=port)

    run(main())


def test_quit_only_closes_one_connection():
    async def main():
        server = make_server()
        await server.start(tcp=("127.0.0.1", 0))
        host, port = server.tcp_address
        first = await ReproClient.connect(host, port=port)
        assert (await first.request("quit"))[0] == "bye"
        second = await ReproClient.connect(host, port=port)
        lines = await second.query("cliques", k=1, gamma=3)
        assert lines[1].startswith("top-1:")
        await second.close()
        await server.stop()

    run(main())


def test_metrics_expose_server_section():
    async def main():
        server = make_server()
        await server.start(tcp=("127.0.0.1", 0))
        host, port = server.tcp_address
        client = await ReproClient.connect(host, port=port)
        await client.query("cliques", k=2, gamma=3)
        lines = await client.request("metrics")
        text = "\n".join(lines)
        assert "connections: opened=1" in text
        assert "batches: 1" in text
        assert "queue_depth:" in text
        await client.close()
        await server.stop()

    run(main())


def test_start_requires_an_endpoint():
    async def main():
        server = make_server()
        with pytest.raises(ValueError):
            await server.start()

    run(main())


def test_stop_is_idempotent():
    async def main():
        server = make_server()
        await server.start(tcp=("127.0.0.1", 0))
        await server.stop()
        await server.stop()

    run(main())


def test_oversized_line_answers_then_disconnects():
    async def main():
        server = make_server()
        await server.start(tcp=("127.0.0.1", 0))
        host, port = server.tcp_address
        reader, writer = await asyncio.open_connection(host, port)
        # Consume the greeting block.
        while (await reader.readline()).decode().rstrip("\n") != ".":
            pass
        writer.write(b"query " + b"x" * 200_000 + b"\n")
        await writer.drain()
        lines = []
        while True:
            raw = await reader.readline()
            if not raw:
                break
            lines.append(raw.decode().rstrip("\n"))
        assert "error: protocol line too long" in lines
        writer.close()

        # The server survived and serves new connections.
        client = await ReproClient.connect(host, port=port)
        assert (await client.query("cliques", k=1, gamma=3))[1].startswith("top-1:")
        await client.close()
        await server.stop()

    run(main())


def test_stale_socket_file_is_cleared_on_start(tmp_path):
    import socket as socket_module

    async def main():
        path = str(tmp_path / "stale.sock")
        # A crashed predecessor: bound socket file, nobody listening.
        leftover = socket_module.socket(socket_module.AF_UNIX)
        leftover.bind(path)
        leftover.close()

        server = make_server()
        await server.start(unix_path=path)
        client = await ReproClient.connect(unix_path=path)
        assert (await client.query("cliques", k=1, gamma=3))[1].startswith("top-1:")
        await client.close()
        await server.stop()

    run(main())


def test_live_socket_is_not_stolen(tmp_path):
    async def main():
        path = str(tmp_path / "live.sock")
        first = make_server()
        await first.start(unix_path=path)
        second = make_server()
        with pytest.raises(OSError):
            await second.start(unix_path=path)
        # The live server keeps working.
        client = await ReproClient.connect(unix_path=path)
        assert (await client.query("cliques", k=1, gamma=3))[1].startswith("top-1:")
        await client.close()
        await first.stop()

    run(main())


def test_fully_buffered_oversized_line_still_gets_error_reply():
    # 64 KiB < line < buffer size: the whole line (newline included) is
    # already in the StreamReader when the limit trips — the error reply
    # must still arrive (no hang waiting for more bytes).
    async def main():
        server = make_server()
        await server.start(tcp=("127.0.0.1", 0))
        host, port = server.tcp_address
        reader, writer = await asyncio.open_connection(host, port)
        while (await reader.readline()).decode().rstrip("\n") != ".":
            pass
        writer.write(b"query " + b"x" * 80_000 + b"\n")
        await writer.drain()
        lines = []
        while True:
            raw = await asyncio.wait_for(reader.readline(), timeout=5.0)
            if not raw:
                break
            lines.append(raw.decode().rstrip("\n"))
        assert "error: protocol line too long" in lines
        writer.close()
        await server.stop()

    run(main())


def test_long_members_response_line_reaches_the_client():
    # A cycle: its only gamma=2 community is the whole ring, whose
    # `members` line far exceeds asyncio's 64 KiB default read limit.
    from repro.graph.builder import graph_from_arrays as build

    def ring(n=20_000):
        return build(n, [(i, (i + 1) % n) for i in range(n)])

    async def main():
        registry = GraphRegistry(preload_datasets=False)
        registry.register("ring", ring)
        server = ReproServer(registry, shards=1)
        await server.start(tcp=("127.0.0.1", 0))
        host, port = server.tcp_address
        client = await ReproClient.connect(host, port=port)
        lines = await client.query("ring", k=1, gamma=2, members=True)
        members_line = next(line for line in lines if "members:" in line)
        assert len(members_line) > 64 * 1024
        await client.close()
        await server.stop()

    run(main())
