"""Property-based tests (hypothesis) on core invariants.

Random small graphs with random distinct weights; every optimised
algorithm is checked against the definition-level oracle and against the
paper's structural lemmas (nesting, monotonicity, keynode uniqueness).
"""

from __future__ import annotations

from typing import List, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    LocalSearchP,
    top_k_influential_communities,
    top_k_noncontainment_communities,
    top_k_truss_communities,
)
from repro.baselines import forward, online_all
from repro.core.count import construct_cvs, count_communities
from repro.core.reference import (
    is_influential_community,
    reference_communities,
    reference_noncontainment_communities,
    reference_truss_communities,
)
from repro.graph.builder import graph_from_arrays
from repro.graph.subgraph import PrefixView


@st.composite
def weighted_graphs(draw, max_n=14):
    """A random simple graph with a random weight permutation."""
    n = draw(st.integers(2, max_n))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), unique=True, max_size=len(possible))
    )
    perm = draw(st.permutations(range(1, n + 1)))
    return graph_from_arrays(n, edges, weights=[float(w) for w in perm])


@st.composite
def graph_and_gamma(draw):
    g = draw(weighted_graphs())
    gamma = draw(st.integers(1, 4))
    return g, gamma


COMMON = dict(max_examples=60, deadline=None)


@given(graph_and_gamma())
@settings(**COMMON)
def test_local_search_matches_oracle(case):
    graph, gamma = case
    expected = reference_communities(graph, gamma)
    k = len(expected) if expected else 1
    result = top_k_influential_communities(graph, k=k, gamma=gamma)
    got = [
        (c.influence, frozenset(c.vertex_ranks)) for c in result.communities
    ]
    assert got == expected


@given(graph_and_gamma())
@settings(**COMMON)
def test_progressive_stream_matches_oracle(case):
    graph, gamma = case
    got = [
        (c.influence, frozenset(c.vertex_ranks))
        for c in LocalSearchP(graph, gamma=gamma).stream()
    ]
    assert got == reference_communities(graph, gamma)


@given(graph_and_gamma())
@settings(**COMMON)
def test_count_equals_enumeration_length(case):
    graph, gamma = case
    view = PrefixView.whole(graph)
    assert count_communities(view, gamma) == len(
        reference_communities(graph, gamma)
    )


@given(graph_and_gamma())
@settings(**COMMON)
def test_every_reported_community_satisfies_definition(case):
    graph, gamma = case
    for community in LocalSearchP(graph, gamma=gamma).stream():
        assert is_influential_community(
            graph, set(community.vertex_ranks), gamma
        )
        assert community.min_degree() >= gamma


@given(graph_and_gamma())
@settings(**COMMON)
def test_communities_nested_or_disjoint(case):
    """Influential communities form a laminar family (Lemma 3.3 ff.)."""
    graph, gamma = case
    sets = [set(m) for _, m in reference_communities(graph, gamma)]
    for i in range(len(sets)):
        for j in range(i + 1, len(sets)):
            a, b = sets[i], sets[j]
            assert a <= b or b <= a or a.isdisjoint(b)


@given(graph_and_gamma())
@settings(**COMMON)
def test_influence_values_unique(case):
    """Lemma 3.3: at most one community per influence value."""
    graph, gamma = case
    influences = [inf for inf, _ in reference_communities(graph, gamma)]
    assert len(set(influences)) == len(influences)


@given(graph_and_gamma())
@settings(**COMMON)
def test_keynode_group_partition(case):
    """cvs groups partition the peeled gamma-core vertex set."""
    graph, gamma = case
    record = construct_cvs(PrefixView.whole(graph), gamma)
    seen = set()
    for i in range(len(record.keys)):
        group = record.group(i)
        assert group[0] == record.keys[i]
        for v in group:
            assert v not in seen
            seen.add(v)


@given(graph_and_gamma(), st.integers(1, 5))
@settings(**COMMON)
def test_global_algorithms_agree(case, k):
    graph, gamma = case
    a = top_k_influential_communities(graph, k=k, gamma=gamma)
    b = forward(graph, k, gamma)
    c = online_all(graph, k, gamma)
    pa = [(x.influence, frozenset(x.vertex_ranks)) for x in a.communities]
    pb = [(x.influence, frozenset(x.vertex_ranks)) for x in b.communities]
    pc = [(x.influence, frozenset(x.vertex_ranks)) for x in c.communities]
    assert pa == pb == pc


@given(graph_and_gamma())
@settings(**COMMON)
def test_noncontainment_matches_oracle(case):
    graph, gamma = case
    expected = reference_noncontainment_communities(graph, gamma)
    k = len(expected) if expected else 1
    result = top_k_noncontainment_communities(graph, k=k, gamma=gamma)
    got = [
        (c.influence, frozenset(c.vertex_ranks)) for c in result.communities
    ]
    assert got == expected


@given(weighted_graphs(max_n=10), st.integers(3, 4))
@settings(max_examples=40, deadline=None)
def test_truss_matches_oracle(graph, gamma):
    expected = reference_truss_communities(graph, gamma)
    k = len(expected) if expected else 1
    result = top_k_truss_communities(graph, k=k, gamma=gamma)
    got = [
        (c.influence, frozenset(c.iter_edges())) for c in result.communities
    ]
    assert got == expected


@given(weighted_graphs(), st.integers(1, 3),
       st.sampled_from([1.5, 2.0, 4.0, 32.0]))
@settings(max_examples=40, deadline=None)
def test_delta_never_changes_answers(graph, gamma, delta):
    from repro.core.local_search import LocalSearch

    base = top_k_influential_communities(graph, k=3, gamma=gamma)
    other = LocalSearch(graph, gamma=gamma, delta=delta).search(3)
    assert [
        (c.influence, frozenset(c.vertex_ranks)) for c in base.communities
    ] == [
        (c.influence, frozenset(c.vertex_ranks)) for c in other.communities
    ]


@given(weighted_graphs(), st.integers(1, 3), st.integers(2, 12))
@settings(max_examples=40, deadline=None)
def test_suffix_property(graph, gamma, p_small):
    """keys/cvs of a prefix is a suffix of any larger prefix's (Section 4)."""
    n = graph.num_vertices
    p_small = min(p_small, n)
    small = construct_cvs(PrefixView(graph, p_small), gamma)
    large = construct_cvs(PrefixView(graph, n), gamma)
    delta = construct_cvs(PrefixView(graph, n), gamma, stop_rank=p_small)
    assert delta.keys + small.keys == large.keys
    assert delta.cvs + small.cvs == large.cvs


@given(graph_and_gamma())
@settings(**COMMON)
def test_monotone_counts_lemma31(case):
    """Lemma 3.1: community count is non-decreasing as the prefix grows."""
    graph, gamma = case
    previous = 0
    for p in range(graph.num_vertices + 1):
        count = count_communities(PrefixView(graph, p), gamma)
        assert count >= previous
        previous = count
