"""Unit tests for the WeightedGraph substrate (rank order, N>=/N< split)."""

from __future__ import annotations

import pytest

from repro.errors import GraphConstructionError, UnknownVertexError
from repro.graph.builder import graph_from_arrays
from repro.graph.weighted_graph import WeightedGraph


def simple_graph() -> WeightedGraph:
    # Path 0-1-2-3 plus chord 0-2; identity weights (0 heaviest).
    return graph_from_arrays(4, [(0, 1), (1, 2), (2, 3), (0, 2)])


class TestConstruction:
    def test_counts(self):
        g = simple_graph()
        assert g.num_vertices == 4
        assert g.num_edges == 4
        assert g.size == 8
        assert len(g) == 4

    def test_weights_strictly_decreasing(self):
        g = simple_graph()
        weights = [g.weight(r) for r in range(4)]
        assert weights == sorted(weights, reverse=True)

    def test_direct_constructor_validates_weight_order(self):
        with pytest.raises(GraphConstructionError):
            WeightedGraph([1.0, 2.0], [[], [0]], [[1], []])

    def test_direct_constructor_validates_adjacency_direction(self):
        # adj_up containing a larger rank must be rejected.
        with pytest.raises(GraphConstructionError):
            WeightedGraph([2.0, 1.0], [[1], []], [[], []])

    def test_direct_constructor_validates_mirrors(self):
        # adj_up says edge (1,0) exists; adj_down disagrees.
        with pytest.raises(GraphConstructionError):
            WeightedGraph([2.0, 1.0], [[], [0]], [[], []])

    def test_duplicate_labels_rejected(self):
        with pytest.raises(GraphConstructionError):
            WeightedGraph(
                [2.0, 1.0], [[], [0]], [[1], []], labels=["a", "a"]
            )

    def test_adjacency_must_be_sorted(self):
        with pytest.raises(GraphConstructionError):
            WeightedGraph(
                [3.0, 2.0, 1.0], [[], [0], [1, 0]], [[1, 2], [2], []]
            )


class TestAdjacencyPartition:
    def test_up_neighbors_have_smaller_rank(self):
        g = simple_graph()
        for u in range(4):
            assert all(v < u for v in g.neighbors_up(u))

    def test_down_neighbors_have_larger_rank(self):
        g = simple_graph()
        for u in range(4):
            assert all(v > u for v in g.neighbors_down(u))

    def test_partition_covers_all_neighbors(self):
        g = simple_graph()
        assert sorted(g.iter_neighbors(2)) == [0, 1, 3]
        assert g.degree(2) == 3

    def test_has_edge_ranks(self):
        g = simple_graph()
        assert g.has_edge_ranks(0, 1)
        assert g.has_edge_ranks(1, 0)
        assert not g.has_edge_ranks(0, 3)
        assert not g.has_edge_ranks(2, 2)

    def test_neighbors_in_prefix(self):
        g = simple_graph()
        assert sorted(g.neighbors_in_prefix(2, 3)) == [0, 1]
        assert sorted(g.neighbors_in_prefix(2, 4)) == [0, 1, 3]

    def test_degree_in_prefix(self):
        g = simple_graph()
        assert g.degree_in_prefix(2, 3) == 2
        assert g.degree_in_prefix(2, 4) == 3
        assert g.degree_in_prefix(0, 1) == 0


class TestLabelsAndWeights:
    def test_label_round_trip(self):
        g = WeightedGraph.from_edges(
            [("x", "y")], weights={"x": 1.0, "y": 2.0}
        )
        assert g.label(g.rank_of("x")) == "x"
        assert g.label(g.rank_of("y")) == "y"
        # y has the larger weight -> rank 0.
        assert g.rank_of("y") == 0

    def test_unknown_vertex(self):
        g = simple_graph()
        with pytest.raises(UnknownVertexError):
            g.rank_of("nope")

    def test_has_vertex(self):
        g = simple_graph()
        assert g.has_vertex(0)
        assert not g.has_vertex(99)

    def test_weight_of_label(self):
        g = WeightedGraph.from_edges(
            [("x", "y")], weights={"x": 1.5, "y": 2.5}
        )
        assert g.weight_of_label("x") == 1.5

    def test_weights_by_label(self):
        g = WeightedGraph.from_edges(
            [("x", "y")], weights={"x": 1.5, "y": 2.5}
        )
        assert g.weights_by_label() == {"x": 1.5, "y": 2.5}

    def test_labels_batch(self):
        g = simple_graph()
        assert g.labels([0, 1]) == [0, 1]


class TestThresholdsAndPrefixes:
    def test_prefix_for_threshold(self):
        g = simple_graph()  # weights 4, 3, 2, 1
        assert g.prefix_for_threshold(4.0) == 1
        assert g.prefix_for_threshold(3.5) == 1
        assert g.prefix_for_threshold(3.0) == 2
        assert g.prefix_for_threshold(1.0) == 4
        assert g.prefix_for_threshold(0.5) == 4
        assert g.prefix_for_threshold(5.0) == 0

    def test_threshold_for_prefix(self):
        g = simple_graph()
        assert g.threshold_for_prefix(1) == 4.0
        assert g.threshold_for_prefix(4) == 1.0
        with pytest.raises(ValueError):
            g.threshold_for_prefix(0)

    def test_min_max_weight(self):
        g = simple_graph()
        assert g.max_weight == 4.0
        assert g.min_weight == 1.0

    def test_prefix_size_matches_induced_subgraph(self):
        g = simple_graph()
        # prefix 1: just vertex 0 -> size 1
        assert g.prefix_size(0) == 0
        assert g.prefix_size(1) == 1
        # prefix 2: {0,1} with edge (0,1) -> size 3
        assert g.prefix_size(2) == 3
        # prefix 3: {0,1,2} with edges (0,1),(1,2),(0,2) -> size 6
        assert g.prefix_size(3) == 6
        assert g.prefix_size(4) == 8

    def test_grow_prefix_reaches_target(self):
        g = simple_graph()
        assert g.grow_prefix(1, 3) == 2
        assert g.grow_prefix(1, 4) == 3
        assert g.grow_prefix(2, 100) == 4  # capped at whole graph

    def test_grow_prefix_already_sufficient(self):
        g = simple_graph()
        assert g.grow_prefix(3, 5) == 3


class TestEdgeIteration:
    def test_iter_edges_orientation(self):
        g = simple_graph()
        edges = list(g.iter_edges())
        assert all(u > v for u, v in edges)
        assert len(edges) == 4
        # ascending by max rank (decreasing edge weight).
        assert [u for u, _ in edges] == sorted(u for u, _ in edges)

    def test_edges_as_labels(self):
        g = WeightedGraph.from_edges(
            [("x", "y")], weights={"x": 1.0, "y": 2.0}
        )
        assert list(g.edges_as_labels()) == [("x", "y")]

    def test_induced_edge_count(self):
        g = simple_graph()
        assert g.induced_edge_count([0, 1, 2]) == 3
        assert g.induced_edge_count([0, 3]) == 0

    def test_induced_edges(self):
        g = simple_graph()
        assert g.induced_edges([0, 1, 2]) == [(1, 0), (2, 0), (2, 1)]

    def test_to_edge_list(self):
        g = simple_graph()
        assert len(g.to_edge_list()) == 4
