"""k-core machinery vs brute force and networkx."""

from __future__ import annotations

import pytest

from repro.graph.builder import graph_from_arrays
from repro.graph.core_decomposition import (
    core_decomposition,
    degeneracy,
    gamma_core,
    gamma_core_members,
)
from repro.graph.subgraph import PrefixView
from tests.conftest import random_graph


def brute_gamma_core(edges, n, gamma):
    """Reference gamma-core by repeated scanning."""
    alive = set(range(n))
    adj = {u: set() for u in range(n)}
    for u, v in edges:
        adj[u].add(v)
        adj[v].add(u)
    changed = True
    while changed:
        changed = False
        for u in list(alive):
            if sum(1 for w in adj[u] if w in alive) < gamma:
                alive.discard(u)
                changed = True
    return alive


class TestGammaCore:
    def test_triangle(self, triangle):
        alive, _ = gamma_core(PrefixView.whole(triangle), 2)
        assert all(alive)
        alive, _ = gamma_core(PrefixView.whole(triangle), 3)
        assert not any(alive)

    def test_gamma_zero(self, triangle):
        alive, _ = gamma_core(PrefixView.whole(triangle), 0)
        assert all(alive)

    def test_negative_gamma(self, triangle):
        with pytest.raises(ValueError):
            gamma_core(PrefixView.whole(triangle), -1)

    def test_members_helper(self, two_cliques):
        members = gamma_core_members(PrefixView.whole(two_cliques), 3)
        assert members == list(range(8))

    def test_prefix_restriction(self, two_cliques):
        # Only the first clique is in the prefix.
        members = gamma_core_members(PrefixView(two_cliques, 4), 3)
        assert members == [0, 1, 2, 3]

    def test_cascade(self):
        # Pendant chain hanging off a triangle collapses for gamma=2.
        g = graph_from_arrays(
            6, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5)]
        )
        members = gamma_core_members(PrefixView.whole(g), 2)
        assert members == [0, 1, 2]

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("gamma", [1, 2, 3, 4])
    def test_matches_brute_force(self, seed, gamma):
        g = random_graph(18, 0.25, seed)
        edges = [(g.label(u), g.label(v)) for u, v in g.iter_edges()]
        expected = brute_gamma_core(edges, 18, gamma)
        got = {
            g.label(r)
            for r in gamma_core_members(PrefixView.whole(g), gamma)
        }
        assert got == expected


class TestCoreDecomposition:
    def test_clique(self, two_cliques):
        cores = core_decomposition(two_cliques)
        assert cores == [3] * 8

    def test_star(self):
        g = graph_from_arrays(5, [(0, i) for i in range(1, 5)])
        assert core_decomposition(g) == [1] * 5

    def test_core_number_definition(self):
        """core[u] is the max gamma whose gamma-core contains u."""
        g = random_graph(20, 0.3, 3)
        cores = core_decomposition(g)
        for gamma in range(1, max(cores) + 2):
            members = set(gamma_core_members(PrefixView.whole(g), gamma))
            expected = {u for u in range(20) if cores[u] >= gamma}
            assert members == expected

    def test_against_networkx(self):
        nx = pytest.importorskip("networkx")
        g = random_graph(40, 0.15, 9)
        ng = nx.Graph()
        ng.add_nodes_from(range(40))
        ng.add_edges_from(
            (g.label(u), g.label(v)) for u, v in g.iter_edges()
        )
        expected = nx.core_number(ng)
        cores = core_decomposition(g)
        got = {g.label(r): cores[r] for r in range(40)}
        assert got == expected

    def test_degeneracy(self, two_cliques):
        assert degeneracy(two_cliques) == 3

    def test_empty_like(self):
        g = graph_from_arrays(1, [])
        assert core_decomposition(g) == [0]
        assert degeneracy(g) == 0
