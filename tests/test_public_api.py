"""Symbol-snapshot of the curated public surface.

If a re-export is added, renamed, or dropped, these tests fail until
the snapshot below is updated deliberately — the public surface can
never change silently.
"""

from __future__ import annotations

import repro
import repro.api


#: The curated top-level surface, alphabetised.  Update ON PURPOSE only.
PUBLIC_SURFACE = sorted(
    [
        "__version__",
        # graph substrate
        "WeightedGraph",
        "GraphBuilder",
        "graph_from_arrays",
        "PrefixView",
        # core search API
        "top_k_influential_communities",
        "progressive_influential_communities",
        "top_k_noncontainment_communities",
        "top_k_truss_communities",
        "global_search_truss",
        "construct_cvs",
        "LocalSearch",
        "LocalSearchP",
        "LocalSearchTruss",
        "Community",
        "TrussCommunity",
        "TopKResult",
        "TrussResult",
        "SearchStats",
        # public query API (repro.api)
        "QuerySpec",
        "ResultSet",
        "Repro",
        "Graph",
        "open",
        "connect",
        # service layer
        "GraphRegistry",
        "QueryEngine",
        "ResultCache",
        "SessionManager",
        "ServiceMetrics",
        "TopKQuery",
        "QueryResult",
        "CommunityView",
        # errors
        "ReproError",
        "GraphConstructionError",
        "DuplicateWeightError",
        "SelfLoopError",
        "UnknownVertexError",
        "QueryParameterError",
        "StorageError",
        "DatasetError",
    ]
)

API_SURFACE = sorted(
    [
        "ALGORITHMS",
        "AUTO",
        "COHESIONS",
        "KERNEL_ALGORITHMS",
        "MODES",
        "WIRE_VERSION",
        "FamilyKey",
        "Graph",
        "QuerySpec",
        "Repro",
        "ResultSet",
        "connect",
        "open",
        "parse_spec_tokens",
        "parse_wire_query",
    ]
)


def test_top_level_all_matches_snapshot():
    assert sorted(repro.__all__) == PUBLIC_SURFACE


def test_api_all_matches_snapshot():
    assert sorted(repro.api.__all__) == API_SURFACE


def test_every_exported_symbol_resolves():
    for name in repro.__all__:
        assert getattr(repro, name) is not None, name
    for name in repro.api.__all__:
        assert getattr(repro.api, name) is not None, name


def test_all_has_no_duplicates():
    assert len(repro.__all__) == len(set(repro.__all__))
    assert len(repro.api.__all__) == len(set(repro.api.__all__))


def test_curated_entry_points_are_the_facade():
    from repro.api.facade import connect, open

    assert repro.open is open
    assert repro.connect is connect
    assert repro.api.open is open
    assert repro.api.connect is connect


def test_lazy_api_dir_includes_facade_symbols():
    listing = dir(repro.api)
    for name in ("open", "connect", "Repro", "Graph"):
        assert name in listing
