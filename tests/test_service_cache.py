"""ResultCache: LRU behaviour, prefix reuse, and resumable extension.

The load-bearing invariant (ISSUE 1 satellite): answering ``k' <= k``
from a cached top-``k`` must be **byte-identical** to a fresh,
cache-free query for ``k'``.
"""

from __future__ import annotations

import json

import pytest

from repro.graph.builder import graph_from_arrays
from repro.service import (
    CacheKey,
    GraphRegistry,
    QueryEngine,
    ResultCache,
    TopKQuery,
)
from repro.service.cache import ProgressiveEntry, StaticEntry


def two_k4s():
    """Two K4s with a weak bridge: exactly two gamma=3 communities."""
    return graph_from_arrays(
        8,
        [
            (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
            (4, 5), (4, 6), (4, 7), (5, 6), (5, 7), (6, 7),
            (3, 4),
        ],
    )


def layered_cliques(num_cliques=6):
    """Disjoint K4s with strictly decreasing weights: many communities."""
    edges = []
    for c in range(num_cliques):
        base = 4 * c
        for i in range(4):
            for j in range(i + 1, 4):
                edges.append((base + i, base + j))
    return graph_from_arrays(4 * num_cliques, edges)


@pytest.fixture()
def registry():
    registry = GraphRegistry(preload_datasets=False)
    registry.register("two-k4s", two_k4s)
    registry.register("cliques", layered_cliques)
    return registry


def communities_json(result) -> bytes:
    """Canonical bytes of a result's communities (the cached payload)."""
    return json.dumps(
        [v.to_dict() for v in result.communities], sort_keys=True
    ).encode("utf-8")


class TestPrefixReuseInvariant:
    @pytest.mark.parametrize("algorithm", ["localsearch-p", "localsearch"])
    @pytest.mark.parametrize("k_prime", [1, 2, 4, 6])
    def test_cached_prefix_is_byte_identical_to_fresh_query(
        self, registry, algorithm, k_prime
    ):
        cached_engine = QueryEngine(registry, cache=ResultCache())
        fresh_engine = QueryEngine(registry, cache=None)

        big = cached_engine.execute(
            TopKQuery(graph="cliques", gamma=3, k=6, algorithm=algorithm)
        )
        assert big.source == "cold"

        served = cached_engine.execute(
            TopKQuery(graph="cliques", gamma=3, k=k_prime, algorithm=algorithm)
        )
        assert served.source == "cache"
        fresh = fresh_engine.execute(
            TopKQuery(graph="cliques", gamma=3, k=k_prime, algorithm=algorithm)
        )
        assert fresh.source == "cold"
        assert communities_json(served) == communities_json(fresh)

    def test_extension_matches_fresh_query(self, registry):
        """k' > k resumes the stream — and still matches a fresh answer."""
        cached_engine = QueryEngine(registry, cache=ResultCache())
        fresh_engine = QueryEngine(registry, cache=None)

        cached_engine.execute(TopKQuery(graph="cliques", gamma=3, k=2))
        extended = cached_engine.execute(
            TopKQuery(graph="cliques", gamma=3, k=5)
        )
        assert extended.source == "extended"
        fresh = fresh_engine.execute(TopKQuery(graph="cliques", gamma=3, k=5))
        assert communities_json(extended) == communities_json(fresh)

    def test_extension_does_not_recompute_prefix(self, registry):
        """The resumed cursor's searcher never re-peels earlier prefixes."""
        engine = QueryEngine(registry, cache=ResultCache())
        engine.execute(TopKQuery(graph="cliques", gamma=3, k=2))
        key = CacheKey.for_spec(TopKQuery(graph="cliques", gamma=3), version=1)
        entry = engine.cache.get(key)
        assert isinstance(entry, ProgressiveEntry)
        rounds_before = entry.cursor.searcher.stats.rounds
        engine.execute(TopKQuery(graph="cliques", gamma=3, k=6))
        rounds_after = entry.cursor.searcher.stats.rounds
        # Resuming added rounds monotonically; prefixes stayed increasing
        # (a restart would reset to the small initial prefix).
        assert rounds_after >= rounds_before
        prefixes = entry.cursor.searcher.stats.prefixes
        assert prefixes == sorted(prefixes)


class TestSources:
    def test_cold_then_cache_then_extended(self, registry):
        engine = QueryEngine(registry, cache=ResultCache())
        assert engine.execute(
            TopKQuery(graph="two-k4s", gamma=3, k=1)
        ).source == "cold"
        assert engine.execute(
            TopKQuery(graph="two-k4s", gamma=3, k=1)
        ).source == "cache"
        assert engine.execute(
            TopKQuery(graph="two-k4s", gamma=3, k=2)
        ).source == "extended"
        stats = engine.cache.stats
        assert (stats.misses, stats.hits, stats.extended) == (1, 1, 1)
        assert stats.hit_rate == pytest.approx(2 / 3)

    def test_exhausted_cursor_serves_larger_k_from_cache(self, registry):
        engine = QueryEngine(registry, cache=ResultCache())
        first = engine.execute(TopKQuery(graph="two-k4s", gamma=3, k=10))
        assert len(first) == 2  # only two communities exist
        assert first.complete
        again = engine.execute(TopKQuery(graph="two-k4s", gamma=3, k=50))
        assert again.source == "cache"
        assert len(again) == 2
        assert again.complete

    def test_static_algorithm_larger_k_is_a_miss(self, registry):
        engine = QueryEngine(registry, cache=ResultCache())
        engine.execute(
            TopKQuery(graph="cliques", gamma=3, k=2, algorithm="localsearch")
        )
        bigger = engine.execute(
            TopKQuery(graph="cliques", gamma=3, k=4, algorithm="localsearch")
        )
        assert bigger.source == "cold"
        # ... but the refreshed entry now serves the larger prefix.
        assert engine.execute(
            TopKQuery(graph="cliques", gamma=3, k=4, algorithm="localsearch")
        ).source == "cache"

    def test_different_gamma_is_a_different_entry(self, registry):
        engine = QueryEngine(registry, cache=ResultCache())
        engine.execute(TopKQuery(graph="two-k4s", gamma=3, k=2))
        assert engine.execute(
            TopKQuery(graph="two-k4s", gamma=2, k=2)
        ).source == "cold"


class TestLRUAndInvalidation:
    def test_capacity_evicts_least_recently_used(self):
        cache = ResultCache(capacity=2)
        k1 = CacheKey("g", 1, 1, "a", 2.0)
        k2 = CacheKey("g", 1, 2, "a", 2.0)
        k3 = CacheKey("g", 1, 3, "a", 2.0)
        e = StaticEntry((), complete=True)
        cache.put(k1, e)
        cache.put(k2, e)
        cache.get(k1)  # refresh k1 -> k2 becomes LRU
        cache.put(k3, e)
        assert cache.get(k1) is not None
        assert cache.get(k2) is None
        assert cache.get(k3) is not None
        assert cache.stats.evictions == 1

    def test_reload_invalidates_via_version(self, registry):
        engine = QueryEngine(registry, cache=ResultCache())
        engine.execute(TopKQuery(graph="two-k4s", gamma=3, k=2))
        registry.reload("two-k4s")
        result = engine.execute(TopKQuery(graph="two-k4s", gamma=3, k=2))
        assert result.source == "cold"
        assert result.graph_version == 2

    def test_invalidate_graph(self, registry):
        engine = QueryEngine(registry, cache=ResultCache())
        engine.execute(TopKQuery(graph="two-k4s", gamma=3, k=2))
        engine.execute(TopKQuery(graph="cliques", gamma=3, k=2))
        dropped = engine.cache.invalidate_graph("two-k4s")
        assert dropped == 1
        assert len(engine.cache) == 1
        assert engine.execute(
            TopKQuery(graph="two-k4s", gamma=3, k=2)
        ).source == "cold"


class TestKTruncationPolicy:
    """ISSUE 2 satellite: `max_cached_k` bounds per-entry retention
    without ever changing what a query receives."""

    def test_cache_validates_max_cached_k(self):
        with pytest.raises(ValueError):
            ResultCache(max_cached_k=0)

    def test_entry_requires_factory_with_cap(self, registry):
        from repro.core.progressive import LocalSearchP

        cursor = LocalSearchP(layered_cliques(), gamma=3).cursor()
        with pytest.raises(ValueError):
            ProgressiveEntry(cursor, max_cached_k=2)

    def test_served_in_full_but_retained_capped(self, registry):
        engine = QueryEngine(registry, cache=ResultCache(max_cached_k=3))
        big = engine.execute(TopKQuery(graph="cliques", gamma=3, k=6))
        assert len(big) == 6
        key = CacheKey.for_spec(TopKQuery(graph="cliques", gamma=3), version=1)
        entry = engine.cache.get(key)
        assert isinstance(entry, ProgressiveEntry)
        assert entry.materialized == 3
        # The cursor (holding live Community objects) was released too.
        assert entry.cursor is None

    def test_prefix_within_cap_is_a_hit_beyond_recomputes(self, registry):
        capped = QueryEngine(registry, cache=ResultCache(max_cached_k=3))
        fresh = QueryEngine(registry, cache=None)
        capped.execute(TopKQuery(graph="cliques", gamma=3, k=6))

        small = capped.execute(TopKQuery(graph="cliques", gamma=3, k=2))
        assert small.source == "cache"
        assert communities_json(small) == communities_json(
            fresh.execute(TopKQuery(graph="cliques", gamma=3, k=2))
        )

        # Beyond the cap: the factory rebuilds a cursor and the stream
        # (deterministic) reproduces the identical answer.
        large = capped.execute(TopKQuery(graph="cliques", gamma=3, k=5))
        assert large.source == "extended"
        assert communities_json(large) == communities_json(
            fresh.execute(TopKQuery(graph="cliques", gamma=3, k=5))
        )

    def test_queries_within_cap_never_truncate(self, registry):
        engine = QueryEngine(registry, cache=ResultCache(max_cached_k=10))
        engine.execute(TopKQuery(graph="cliques", gamma=3, k=4))
        key = CacheKey.for_spec(TopKQuery(graph="cliques", gamma=3), version=1)
        entry = engine.cache.get(key)
        assert entry.materialized == 4
        assert entry.cursor is not None  # still resumable in place

    def test_static_entries_stored_pre_truncated(self, registry):
        engine = QueryEngine(registry, cache=ResultCache(max_cached_k=2))
        first = engine.execute(
            TopKQuery(graph="cliques", gamma=3, k=4, algorithm="localsearch")
        )
        assert len(first) == 4  # the caller sees everything
        key = CacheKey.for_spec(
            TopKQuery(graph="cliques", gamma=3, algorithm="localsearch"),
            version=1,
        )
        entry = engine.cache.get(key)
        assert isinstance(entry, StaticEntry)
        assert len(entry.views) == 2
        assert not entry.complete
        # Within the retained prefix: still a byte-identical hit.
        again = engine.execute(
            TopKQuery(graph="cliques", gamma=3, k=2, algorithm="localsearch")
        )
        assert again.source == "cache"
        assert communities_json(again) == communities_json(
            QueryEngine(registry, cache=None).execute(
                TopKQuery(graph="cliques", gamma=3, k=2, algorithm="localsearch")
            )
        )

    def test_exhaustion_flag_survives_only_below_cap(self, registry):
        # two-k4s has exactly 2 communities; cap 3 never truncates them.
        engine = QueryEngine(registry, cache=ResultCache(max_cached_k=3))
        done = engine.execute(TopKQuery(graph="two-k4s", gamma=3, k=10))
        assert done.complete
        again = engine.execute(TopKQuery(graph="two-k4s", gamma=3, k=50))
        assert again.source == "cache"
        assert again.complete

    def test_complete_survives_truncation_crossing_exhaustion(self, registry):
        # 6 communities total, cap 5: the exhausting query is truncated
        # in retention but must still be reported complete.
        capped = QueryEngine(registry, cache=ResultCache(max_cached_k=5))
        result = capped.execute(TopKQuery(graph="cliques", gamma=3, k=100))
        assert len(result) == 6
        assert result.complete
        reference = QueryEngine(registry, cache=None).execute(
            TopKQuery(graph="cliques", gamma=3, k=100)
        )
        assert reference.complete
