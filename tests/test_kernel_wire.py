"""Serving-tier integration of the kernel layer and the JSON wire mode.

Covers the pieces the flat-array refactor threads through the service
stack: CSR pre-build at registration, per-query kernel provenance
(QueryResult.kernel / ServiceMetrics.by_kernel), the allocation-free
cache-hit paths (memoised cursor slices and cache-entry answers), and
the structured ``json`` response mode across the stdio shell, the
asyncio transport and ReproClient.
"""

from __future__ import annotations

import asyncio
import io
import json

import pytest

from repro.core.fastpeel import resolve_kernel
from repro.core.progressive import LocalSearchP
from repro.graph.builder import graph_from_arrays
from repro.server import ReproClient, ReproServer
from repro.service import (
    GraphRegistry,
    QueryEngine,
    ResultCache,
    ServiceMetrics,
    ServiceShell,
    SessionManager,
    TopKQuery,
)


def two_k4s():
    return graph_from_arrays(
        8,
        [
            (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
            (4, 5), (4, 6), (4, 7), (5, 6), (5, 7), (6, 7),
            (3, 4),
        ],
    )


def make_registry(**kwargs):
    registry = GraphRegistry(preload_datasets=False, **kwargs)
    registry.register("g", two_k4s)
    return registry


def make_shell(registry=None, cache=True):
    registry = registry if registry is not None else make_registry()
    metrics = ServiceMetrics()
    engine = QueryEngine(
        registry,
        cache=ResultCache(16) if cache else None,
        metrics=metrics,
    )
    out = io.StringIO()
    shell = ServiceShell(
        engine, SessionManager(registry, metrics=metrics), out, metrics=metrics
    )
    return shell, out, metrics


# ----------------------------------------------------------------------
class TestRegistryPrebuild:
    def test_csr_built_at_registration(self):
        registry = make_registry()
        handle = registry.get("g")
        # The CSR mirror (and its kernel-side list views) is already
        # cached on the instance: no flattening on the first query.
        assert handle.graph._csr is not None
        assert handle.graph._csr._lists is not None
        row = registry.describe()[0]
        assert row["loaded"] and "csr_seconds" in row

    def test_prebuild_can_be_disabled(self):
        registry = make_registry(prebuild_csr=False)
        handle = registry.get("g")
        assert handle.graph._csr is None


class TestKernelProvenance:
    def test_query_result_reports_kernel(self):
        registry = make_registry()
        engine = QueryEngine(registry, cache=ResultCache(4))
        result = engine.execute(TopKQuery(graph="g", k=2, gamma=3))
        assert result.kernel == resolve_kernel()
        assert result.to_dict()["kernel"] == result.kernel

    def test_metrics_count_by_kernel(self):
        shell, out, metrics = make_shell()
        shell.execute_line("query g k=2 gamma=3")
        shell.execute_line("query g k=2 gamma=3")
        snap = metrics.snapshot()
        assert snap["by_kernel"] == {resolve_kernel(): 2}
        shell.execute_line("metrics")
        assert f"kernel[{resolve_kernel()}]" in out.getvalue()


class TestAllocationFreeHits:
    def test_cursor_take_returns_stable_tuples(self):
        cursor = LocalSearchP(two_k4s(), gamma=3).cursor()
        first = cursor.take(2)
        assert isinstance(first, tuple)
        assert cursor.take(2) == first  # pure slice, no recompute
        bigger = cursor.take(50)  # exhausts the stream
        assert bigger[:2] == first

    def test_entry_serve_memoises_answers(self):
        registry = make_registry()
        engine = QueryEngine(registry, cache=ResultCache(4))
        query = TopKQuery(graph="g", k=2, gamma=3)
        cold = engine.execute(query)
        assert cold.source == "cold"
        hit1 = engine.execute(query)
        hit2 = engine.execute(query)
        assert hit1.source == hit2.source == "cache"
        # The served tuple is memoised per k: identical object, no copy.
        assert hit1.communities is hit2.communities
        assert hit1.communities == cold.communities


class TestJsonWireMode:
    def test_shell_json_response(self):
        shell, out, _ = make_shell()
        shell.execute_line("query g k=2 gamma=3 json")
        payload = json.loads(out.getvalue().strip())
        assert payload["graph"] == "g"
        assert payload["k"] == 2
        assert payload["algorithm"] == "localsearch-p"
        assert payload["kernel"] == resolve_kernel()
        assert len(payload["communities"]) == 2
        # members elided unless requested
        assert "members" not in payload["communities"][0]

    def test_shell_json_with_members(self):
        shell, out, _ = make_shell()
        shell.execute_line("query g k=1 gamma=3 json members")
        payload = json.loads(out.getvalue().strip())
        assert sorted(payload["communities"][0]["members"]) == [0, 1, 2, 3]

    def test_json_bytes_identical_between_cold_and_cache(self):
        """The cache contract, restated for the wire: same bytes."""
        shell, out, _ = make_shell()
        shell.execute_line("query g k=3 gamma=3 json")
        cold = json.loads(out.getvalue().strip())
        out.seek(0); out.truncate(0)
        shell.execute_line("query g k=2 gamma=3 json")
        cached = json.loads(out.getvalue().strip())
        assert cached["source"] == "cache"
        assert cached["communities"] == cold["communities"][:2]

    def test_transport_and_client_json_mode(self):
        async def main():
            server = ReproServer(make_registry(), shards=1)
            await server.start(tcp=("127.0.0.1", 0))
            host, port = server.tcp_address
            client = await ReproClient.connect(host, port=port)
            try:
                payload = await client.query(
                    "g", k=2, gamma=3, mode="json"
                )
                assert payload["graph"] == "g"
                assert payload["source"] in ("cold", "cache", "extended")
                assert len(payload["communities"]) == 2
                # text mode unchanged
                lines = await client.query("g", k=2, gamma=3)
                assert lines[0].startswith("localsearch-p[")
                with pytest.raises(ValueError):
                    await client.query("g", mode="xml")
                # a JSON response is exactly one line, parseable by any
                # client speaking the framing — not just ours
                raw = await client.request("query g k=1 gamma=3 json")
                assert len(raw) == 1
                json.loads(raw[0])
            finally:
                await client.close()
                await server.stop()
        asyncio.run(main())

    def test_unknown_flag_still_rejected(self):
        shell, out, _ = make_shell()
        shell.execute_line("query g k=2 gamma=3 yaml")
        assert "unknown query argument" in out.getvalue()
