"""repro.api — QuerySpec, ResultSet, and the open()/connect() facade.

The tentpole contract under test: one typed spec crosses every layer
boundary, the ResultSet is lazy and cache-backed, and the facade gives
the identical surface over an in-process engine and a remote server.
"""

from __future__ import annotations

import asyncio
import dataclasses
import threading

import pytest

import repro
from repro.api import (
    FamilyKey,
    QuerySpec,
    ResultSet,
    parse_spec_tokens,
    parse_wire_query,
)
from repro.errors import QueryParameterError, ServiceError
from repro.graph.builder import graph_from_arrays
from repro.service import GraphRegistry, QueryEngine, ResultCache, TopKQuery


def layered_cliques(num_cliques=6):
    """Disjoint K4s with strictly decreasing weights: many communities."""
    edges = []
    for c in range(num_cliques):
        base = 4 * c
        for i in range(4):
            for j in range(i + 1, 4):
                edges.append((base + i, base + j))
    return graph_from_arrays(4 * num_cliques, edges)


@pytest.fixture()
def registry():
    registry = GraphRegistry(preload_datasets=False)
    registry.register("cliques", layered_cliques)
    return registry


@pytest.fixture()
def facade(registry):
    return repro.open(registry=registry)


class TestQuerySpecValidation:
    def test_defaults_are_valid(self):
        spec = QuerySpec(graph="g")
        assert (spec.gamma, spec.k, spec.algorithm) == (10, 10, "auto")
        assert spec.containment and spec.cohesion == "core"
        assert spec.mode == "text"

    @pytest.mark.parametrize(
        "params",
        [
            dict(graph=""),
            dict(graph="g", k=0),
            dict(graph="g", gamma=0),
            dict(graph="g", delta=1.0),
            dict(graph="g", algorithm="quantum"),
            dict(graph="g", kernel="fortran"),
            dict(graph="g", cohesion="clique"),
            dict(graph="g", mode="xml"),
            dict(graph="g", cohesion="truss", algorithm="localsearch"),
            dict(graph="g", cohesion="truss", containment=False),
            dict(graph="g", containment=False, algorithm="backward"),
        ],
    )
    def test_invalid_specs_raise(self, params):
        with pytest.raises(QueryParameterError):
            QuerySpec(**params)

    def test_topkquery_is_a_deprecation_alias(self):
        assert TopKQuery is QuerySpec
        legacy = TopKQuery(graph="g", gamma=3, k=2, algorithm="forward")
        assert isinstance(legacy, QuerySpec)


class TestResolution:
    def test_auto_resolves_to_localsearch_p(self):
        assert QuerySpec(graph="g").resolved_algorithm() == "localsearch-p"

    def test_auto_with_truss_cohesion_resolves_to_truss(self):
        spec = QuerySpec(graph="g", cohesion="truss")
        assert spec.resolved_algorithm() == "truss"

    def test_auto_without_containment_resolves_to_noncontainment(self):
        spec = QuerySpec(graph="g", containment=False)
        assert spec.resolved_algorithm() == "noncontainment"

    def test_explicit_algorithm_wins(self):
        spec = QuerySpec(graph="g", algorithm="backward")
        assert spec.resolved_algorithm() == "backward"


class TestCacheKey:
    def test_k_and_mode_are_not_part_of_the_family(self):
        a = QuerySpec(graph="g", gamma=3, k=2)
        b = QuerySpec(graph="g", gamma=3, k=50, mode="json")
        assert a.cache_key() == b.cache_key()

    def test_kernel_is_part_of_the_family(self):
        a = QuerySpec(graph="g", gamma=3, kernel="python")
        b = QuerySpec(graph="g", gamma=3, kernel="array")
        assert a.cache_key() != b.cache_key()
        assert a.cache_key().kernel == "python"

    def test_default_kernel_matches_explicit_resolved(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "array")
        a = QuerySpec(graph="g", gamma=3)
        b = QuerySpec(graph="g", gamma=3, kernel="array")
        assert a.cache_key() == b.cache_key()

    def test_non_kernel_algorithms_key_kernel_none(self):
        spec = QuerySpec(graph="g", algorithm="backward")
        assert spec.cache_key() == FamilyKey("g", 10, "backward", 2.0, None)

    def test_equivalent_nc_spellings_share_a_family(self):
        explicit = QuerySpec(graph="g", algorithm="noncontainment")
        via_flag = QuerySpec(graph="g", containment=False)
        assert explicit.cache_key() == via_flag.cache_key()


class TestWireCodec:
    def test_round_trip_is_identity_and_byte_stable(self):
        spec = QuerySpec(
            graph="email", gamma=5, k=3, algorithm="localsearch-p",
            delta=3.0, kernel="array", mode="json",
        )
        wire = spec.to_wire()
        again = QuerySpec.from_wire(wire)
        assert again == spec
        assert again.to_wire() == wire

    def test_versioned_payload_with_unknown_keys_is_tolerated(self):
        spec = QuerySpec.from_wire(
            {"v": 1, "graph": "g", "k": 2, "future_field": 123}
        )
        assert (spec.graph, spec.k) == ("g", 2)

    def test_unsupported_version_is_rejected(self):
        with pytest.raises(QueryParameterError):
            QuerySpec.from_wire({"v": 99, "graph": "g"})

    def test_legacy_unversioned_payload_decodes(self):
        # The pre-PR-4 shape: QueryResult.to_dict()'s query parameters.
        legacy = {
            "graph": "email", "graph_version": 1, "gamma": 5, "k": 3,
            "delta": 2.0, "algorithm": "localsearch-p", "source": "cold",
            "elapsed_ms": 1.0, "complete": False, "kernel": None,
            "communities": [],
        }
        spec = QuerySpec.from_wire(legacy)
        assert spec == QuerySpec(
            graph="email", gamma=5, k=3, algorithm="localsearch-p"
        )

    def test_missing_graph_and_malformed_payloads_raise(self):
        for bad in ({"v": 1}, "not json {", "[1,2]", {"graph": "g", "k": "x"}):
            with pytest.raises(QueryParameterError):
                QuerySpec.from_wire(bad)


class TestTokenGrammar:
    def test_classic_tokens_still_parse(self):
        spec, members = parse_spec_tokens(
            ["g", "k=3", "gamma=5", "algorithm=forward", "delta=2.5", "members"]
        )
        assert spec == QuerySpec(
            graph="g", k=3, gamma=5, algorithm="forward", delta=2.5
        )
        assert members

    def test_new_keys_parse(self):
        spec, _ = parse_spec_tokens(
            ["g", "kernel=python", "cohesion=core", "containment=false", "json"]
        )
        assert spec.kernel == "python"
        assert not spec.containment
        assert spec.mode == "json"

    def test_nc_flag_is_containment_shorthand(self):
        spec, _ = parse_spec_tokens(["g", "nc"])
        assert not spec.containment
        assert spec.resolved_algorithm() == "noncontainment"

    def test_unknown_arguments_are_reported(self):
        with pytest.raises(QueryParameterError, match="unknown query argument"):
            parse_spec_tokens(["g", "frobnicate=1"])
        with pytest.raises(QueryParameterError, match="unknown query argument"):
            parse_spec_tokens(["g", "wat"])

    def test_bad_boolean_is_reported(self):
        with pytest.raises(QueryParameterError, match="not a boolean"):
            parse_spec_tokens(["g", "containment=maybe"])

    def test_parse_query_shim_keeps_the_3_tuple(self):
        from repro.service import ServiceShell

        spec, members, as_json = ServiceShell.parse_query(
            ["g", "k=2", "json", "members"]
        )
        assert isinstance(spec, QuerySpec)
        assert members and as_json

    def test_wire_request_carries_members_next_to_the_spec(self):
        spec, members = parse_wire_query(
            {"v": 1, "graph": "g", "k": 2, "members": True}
        )
        assert spec.k == 2 and members


class TestResultSet:
    def test_nothing_runs_until_touched(self, facade):
        calls = []

        def fetch(spec):
            calls.append(spec.k)
            return facade.engine.execute(spec)

        rs = ResultSet(QuerySpec(graph="cliques", gamma=3, k=4), fetch)
        assert not rs.fetched
        assert calls == []
        assert len(rs) == 4
        assert calls == [4]
        assert len(rs) == 4  # repeat access: no refetch
        assert calls == [4]

    def test_small_slice_fetches_only_that_much(self, facade):
        rs = facade.topk(QuerySpec(graph="cliques", gamma=3, k=6))
        top2 = rs[:2]
        assert len(top2) == 2
        # Only 2 communities were materialised by the backend so far
        # (.result would force the full k=6, so peek at the buffer).
        assert len(rs._result.communities) == 2
        assert rs[0] == top2[0]

    def test_slices_match_fresh_queries_exactly(self, facade, registry):
        rs = facade.topk(QuerySpec(graph="cliques", gamma=3, k=6))
        fresh = QueryEngine(registry, cache=None).execute(
            QuerySpec(graph="cliques", gamma=3, k=4)
        )
        assert rs[:4] == fresh.communities

    def test_extend_to_resumes_from_cache(self, facade):
        rs = facade.topk(QuerySpec(graph="cliques", gamma=3, k=2))
        assert len(rs) == 2
        assert rs.source == "cold"
        rs.extend_to(5)
        assert len(rs) == 5
        assert rs.source == "extended"  # cursor resumed, not recomputed
        assert rs.spec.k == 5

    def test_iteration_and_negative_indexing(self, facade):
        rs = facade.topk(QuerySpec(graph="cliques", gamma=3, k=3))
        views = list(rs)
        assert len(views) == 3
        assert rs[-1] == views[-1]
        with pytest.raises(IndexError):
            rs[99]

    def test_stream_doubles_until_exhausted(self, facade):
        rs = facade.topk(QuerySpec(graph="cliques", gamma=3, k=1))
        streamed = list(rs.stream(prefetch=1))
        assert len(streamed) == 6  # all communities, past spec.k
        influences = [v.influence for v in streamed]
        assert influences == sorted(influences, reverse=True)

    def test_stats_and_kernel_provenance(self, facade):
        rs = facade.topk(QuerySpec(graph="cliques", gamma=3, k=2, kernel="python"))
        assert rs.kernel == "python"
        stats = rs.stats
        assert stats["source"] == "cold"
        assert stats["algorithm"] == "localsearch-p"
        assert stats["served"] == 2
        assert stats["graph"] == "cliques"

    def test_to_dict_matches_engine_result(self, facade):
        spec = QuerySpec(graph="cliques", gamma=3, k=2)
        rs = facade.topk(spec)
        assert rs.to_dict() == rs.result.to_dict()


class TestLocalFacade:
    def test_graph_topk_kwargs_and_spec_agree(self, facade):
        a = facade.graph("cliques").topk(k=2, gamma=3)
        b = facade.graph("cliques").topk(QuerySpec(graph="cliques", k=2, gamma=3))
        assert a.communities == b.communities

    def test_graph_repoints_foreign_specs(self, facade):
        spec = QuerySpec(graph="elsewhere", k=2, gamma=3)
        rs = facade.graph("cliques").topk(spec)
        assert rs.spec.graph == "cliques"
        assert len(rs) == 2

    def test_repeat_queries_hit_the_shared_cache(self, facade):
        spec = QuerySpec(graph="cliques", gamma=3, k=2)
        assert facade.topk(spec).source == "cold"
        assert facade.topk(spec).source == "cache"

    def test_open_edge_list_sets_default_graph(self, tmp_path):
        from repro.graph.io import write_edge_list

        path = tmp_path / "tiny.txt"
        write_edge_list(
            path, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (0, 3)]
        )
        with repro.open(str(path)) as rp:
            graph = rp.graph()
            assert graph.name == "tiny"
            assert len(graph.topk(k=1, gamma=3)) == 1

    def test_graphs_lists_registry_names(self, facade):
        assert facade.graphs() == ["cliques"]

    def test_no_default_graph_raises(self, facade):
        with pytest.raises(ServiceError):
            facade.graph()

    def test_spec_and_kwargs_are_mutually_exclusive(self, facade):
        with pytest.raises(TypeError):
            facade.graph("cliques").topk(
                QuerySpec(graph="cliques"), k=2
            )

    def test_engine_kwargs_shim(self, facade):
        result = facade.engine.execute(graph="cliques", gamma=3, k=2)
        assert len(result.communities) == 2


class TestRemoteFacade:
    """connect(): the same surface over a live ReproServer."""

    @pytest.fixture()
    def server_port(self, registry):
        from repro.server import ReproServer

        server = ReproServer(registry=registry, shards=1)
        started = threading.Event()
        box = {}

        def run():
            async def main():
                await server.start(tcp=("127.0.0.1", 0))
                box["port"] = server.tcp_address[1]
                started.set()
                await server.serve_until_shutdown()

            asyncio.run(main())

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert started.wait(10)
        yield box["port"]
        server.request_shutdown()
        thread.join(timeout=10)

    def test_connect_matches_open(self, facade, server_port):
        spec = QuerySpec(graph="cliques", gamma=3, k=3)
        local = facade.topk(spec)
        with repro.connect(port=server_port) as remote:
            rs = remote.graph("cliques").topk(spec)
            assert isinstance(rs, ResultSet)
            assert rs.communities == local.communities
            assert rs.kernel == local.kernel
            assert [v.members for v in rs] == [v.members for v in local]

    def test_remote_extend_and_slice(self, facade, server_port):
        with repro.connect(port=server_port) as remote:
            rs = remote.graph("cliques").topk(k=2, gamma=3)
            assert len(rs) == 2
            rs.extend_to(5)
            assert len(rs) == 5
            reference = facade.topk(QuerySpec(graph="cliques", gamma=3, k=5))
            assert rs.communities == reference.communities

    def test_remote_graphs_listing(self, server_port):
        with repro.connect(port=server_port) as remote:
            assert "cliques" in remote.graphs()

    def test_remote_has_no_local_engine(self, server_port):
        with repro.connect(port=server_port) as remote:
            with pytest.raises(ServiceError):
                remote.engine


class TestSpecHelpers:
    def test_with_k_is_identity_when_unchanged(self):
        spec = QuerySpec(graph="g", k=5)
        assert spec.with_k(5) is spec
        assert spec.with_k(9) == dataclasses.replace(spec, k=9)


class TestReviewRegressions:
    """Sequence contract, provenance laziness, and whitespace dispatch."""

    def test_integer_index_past_k_raises_without_extending(self, facade):
        calls = []

        def fetch(spec):
            calls.append(spec.k)
            return facade.engine.execute(spec)

        rs = ResultSet(QuerySpec(graph="cliques", gamma=3, k=2), fetch)
        assert len(rs) == 2
        with pytest.raises(IndexError):
            rs[2]  # == len(rs): must NOT silently grow the query
        assert calls == [2]  # no hidden extend fetch happened

    def test_slice_past_k_is_clamped_to_the_spec(self, facade):
        rs = facade.topk(QuerySpec(graph="cliques", gamma=3, k=2))
        assert len(rs[:10]) == 2  # bounded by spec.k; extend_to grows

    def test_provenance_reads_do_not_force_full_k(self, facade):
        calls = []

        def fetch(spec):
            calls.append(spec.k)
            return facade.engine.execute(spec)

        rs = ResultSet(QuerySpec(graph="cliques", gamma=3, k=6), fetch)
        rs[:2]
        assert calls == [2]
        # .source/.stats report the partial fetch instead of forcing k=6.
        assert rs.source in ("cold", "cache", "extended")
        assert rs.stats["served"] == 2
        assert calls == [2]

    def test_tab_separated_query_lines_parse(self, registry, facade):
        import io

        from repro.service import ServiceShell, SessionManager

        out = io.StringIO()
        shell = ServiceShell(
            facade.engine, SessionManager(registry), out
        )
        assert shell.execute_line("query\tcliques k=1 gamma=3")
        text = out.getvalue()
        assert "top-1:" in text and "error" not in text

    def test_tab_separated_query_over_the_wire(self, registry):
        import asyncio

        from repro.server import ReproClient, ReproServer

        async def main():
            server = ReproServer(registry=registry, shards=1)
            await server.start(tcp=("127.0.0.1", 0))
            client = await ReproClient.connect(port=server.tcp_address[1])
            lines = await client.request("query\tcliques k=1 gamma=3")
            await client.close()
            await server.stop()
            return lines

        lines = asyncio.run(main())
        assert any(line.startswith("top-1:") for line in lines)
        assert not any(line.startswith("error") for line in lines)
