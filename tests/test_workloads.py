"""Workload generators, weight schemes, dataset registry, DBLP network."""

from __future__ import annotations

import pytest

from repro.errors import DatasetError
from repro.graph.core_decomposition import degeneracy
from repro.graph.metrics import degree_histogram, graph_statistics
from repro.workloads import (
    DATASETS,
    PAPER_STATS,
    assign_weights,
    barabasi_albert,
    build_weighted_graph,
    chung_lu,
    clear_cache,
    dataset_names,
    erdos_renyi,
    load_dataset,
    planted_dense_blocks,
    planted_partition,
    researcher_names,
    rmat,
    synthetic_dblp,
)


class TestGenerators:
    def test_erdos_renyi_counts(self):
        n, edges = erdos_renyi(50, 100, seed=1)
        assert n == 50
        assert len(edges) == 100
        assert all(u < v for u, v in edges)

    def test_erdos_renyi_deterministic(self):
        assert erdos_renyi(30, 60, seed=5) == erdos_renyi(30, 60, seed=5)
        assert erdos_renyi(30, 60, seed=5) != erdos_renyi(30, 60, seed=6)

    def test_erdos_renyi_caps_at_complete(self):
        n, edges = erdos_renyi(5, 1000, seed=0)
        assert len(edges) == 10

    def test_barabasi_albert(self):
        n, edges = barabasi_albert(200, attach=3, seed=2)
        assert n == 200
        g = build_weighted_graph(n, edges, weights="identity")
        # Degeneracy of a BA graph is ~attach.
        assert degeneracy(g) >= 3
        # Preferential attachment: the max degree is well above attach.
        hist = degree_histogram(g)
        assert max(hist) > 10

    def test_barabasi_albert_validation(self):
        with pytest.raises(ValueError):
            barabasi_albert(10, attach=0)

    def test_chung_lu_heavy_tail(self):
        n, edges = chung_lu(500, avg_degree=8.0, exponent=2.2, seed=3)
        g = build_weighted_graph(n, edges, weights="identity")
        degrees = sorted(
            (g.degree(u) for u in range(n)), reverse=True
        )
        # Heavy tail: top degree dwarfs the median.
        assert degrees[0] > 5 * max(degrees[n // 2], 1)

    def test_rmat_shape(self):
        n, edges = rmat(scale=8, edge_factor=4, seed=4)
        assert n == 256
        assert len(edges) > 300
        assert all(0 <= u < 256 and 0 <= v < 256 for u, v in edges)

    def test_rmat_validation(self):
        with pytest.raises(ValueError):
            rmat(scale=4, a=0.5, b=0.4, c=0.3)

    def test_planted_partition_blocks_are_dense(self):
        n, edges = planted_partition(3, 10, p_in=0.9, p_out_edges=5, seed=6)
        assert n == 30
        g = build_weighted_graph(n, edges, weights="identity")
        # Each block is nearly a clique: high degeneracy.
        assert degeneracy(g) >= 5

    def test_planted_dense_blocks_raise_degeneracy(self):
        n, edges = erdos_renyi(300, 400, seed=7)
        before = degeneracy(build_weighted_graph(n, edges, "identity"))
        boosted = planted_dense_blocks(
            n, edges, num_blocks=2, block_size=30, p_in=0.9, seed=7
        )
        after = degeneracy(build_weighted_graph(n, boosted, "identity"))
        assert after > before + 10

    def test_planted_blocks_validation(self):
        with pytest.raises(ValueError):
            planted_dense_blocks(5, [], 1, 10, 0.5)


class TestWeightSchemes:
    @pytest.mark.parametrize("scheme", ["pagerank", "degree", "random",
                                        "identity"])
    def test_distinct(self, scheme):
        n, edges = erdos_renyi(40, 80, seed=8)
        weights = assign_weights(n, edges, scheme=scheme, seed=8)
        assert len(weights) == n
        assert len(set(weights)) == n

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            assign_weights(5, [], scheme="tarot")

    def test_degree_scheme_orders_by_degree(self):
        edges = [(0, i) for i in range(1, 6)]
        weights = assign_weights(6, edges, scheme="degree")
        assert weights[0] == max(weights)


class TestDatasetRegistry:
    def test_names_in_table1_order(self):
        assert dataset_names() == list(PAPER_STATS)

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            load_dataset("facebook")

    def test_email_standin_properties(self, email_graph):
        stats = graph_statistics(email_graph, "email")
        assert stats.gamma_max >= 15  # deep core planted
        assert stats.num_vertices == 2000

    def test_caching(self):
        a = load_dataset("email")
        b = load_dataset("email")
        assert a is b
        clear_cache()
        c = load_dataset("email")
        assert c is not a

    def test_size_ordering_preserved(self):
        """Stand-ins keep the paper's m ordering for the extremes."""
        email = load_dataset("email")
        twitter = load_dataset("twitter")
        assert email.num_edges < twitter.num_edges

    def test_specs_carry_paper_stats(self):
        for name, spec in DATASETS.items():
            assert spec.paper_vertices == PAPER_STATS[name][0]
            assert spec.paper_edges == PAPER_STATS[name][1]


class TestDBLP:
    def test_names_unique(self):
        names = researcher_names(2000)
        assert len(set(names)) == 2000

    def test_structure(self):
        graph, planted = synthetic_dblp()
        assert graph.num_vertices == 1743
        assert len(planted["top_core_cluster"]) == 14
        assert len(planted["top_truss_cluster"]) == 6
        assert len(planted["blob"]) >= 1100

    def test_case_study_relations(self):
        """The Figure 20/21 qualitative relations hold."""
        from repro import LocalSearchP, top_k_truss_communities
        from repro.graph.connectivity import component_of
        from repro.graph.core_decomposition import gamma_core
        from repro.graph.subgraph import PrefixView

        graph, planted = synthetic_dblp()
        top_core = LocalSearchP(graph, gamma=5).run(k=1).communities[0]
        top_truss = top_k_truss_communities(graph, 1, 6).communities[0]

        # The truss community is smaller and denser than the 5-community.
        assert top_truss.num_vertices < top_core.num_vertices
        # Truss influence < core influence (harder constraint; the paper's
        # keynode ranks: 339 vs 215 of 1,743).
        assert top_truss.influence < top_core.influence
        # The planted clusters are exactly what gets found.
        assert set(top_core.vertices) <= set(planted["top_core_cluster"])
        assert set(top_truss.vertices) == set(planted["top_truss_cluster"])
        # The 5-core *community* (no influence constraint) blows up
        # (paper: 1,148 of 1,743 researchers).
        view = PrefixView.whole(graph)
        alive, _ = gamma_core(view, 5)
        blob = component_of(view, top_core.keynode, alive)
        assert len(blob) > 20 * top_core.num_vertices
        # Section 6 remark: the truss community lies inside the
        # 5-community sharing its influence value.
        truss_view = PrefixView(graph, top_truss.keynode + 1)
        t_alive, _ = gamma_core(truss_view, 5)
        enclosing = set(
            component_of(truss_view, top_truss.keynode, t_alive)
        )
        assert set(top_truss.vertex_ranks) <= enclosing
