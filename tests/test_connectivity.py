"""Connectivity helpers vs networkx."""

from __future__ import annotations

import pytest

from repro.graph.builder import graph_from_arrays
from repro.graph.connectivity import (
    bfs_order,
    component_of,
    connected_components,
    is_connected_subset,
)
from repro.graph.subgraph import PrefixView
from tests.conftest import random_graph


class TestComponentOf:
    def test_two_components(self, two_cliques):
        view = PrefixView.whole(two_cliques)
        alive = [True] * 8
        assert sorted(component_of(view, 0, alive)) == [0, 1, 2, 3]
        assert sorted(component_of(view, 5, alive)) == [4, 5, 6, 7]

    def test_dead_source(self, two_cliques):
        view = PrefixView.whole(two_cliques)
        alive = [False] * 8
        assert component_of(view, 0, alive) == []

    def test_alive_mask_cuts_component(self):
        g = graph_from_arrays(4, [(0, 1), (1, 2), (2, 3)])
        view = PrefixView.whole(g)
        alive = [True, True, False, True]
        assert sorted(component_of(view, 0, alive)) == [0, 1]


class TestConnectedComponents:
    def test_counts(self, two_cliques):
        view = PrefixView.whole(two_cliques)
        comps = connected_components(view, [True] * 8)
        assert sorted(len(c) for c in comps) == [4, 4]

    def test_against_networkx(self):
        nx = pytest.importorskip("networkx")
        g = random_graph(30, 0.05, 17)
        view = PrefixView.whole(g)
        comps = connected_components(view, [True] * 30)
        ng = nx.Graph()
        ng.add_nodes_from(range(30))
        ng.add_edges_from(g.iter_edges())
        expected = sorted(len(c) for c in nx.connected_components(ng))
        assert sorted(len(c) for c in comps) == expected

    def test_partition(self):
        g = random_graph(25, 0.08, 23)
        view = PrefixView.whole(g)
        comps = connected_components(view, [True] * 25)
        seen = [r for comp in comps for r in comp]
        assert sorted(seen) == list(range(25))


class TestIsConnectedSubset:
    def test_trivial(self, triangle):
        view = PrefixView.whole(triangle)
        assert is_connected_subset(view, [])
        assert is_connected_subset(view, [1])

    def test_connected(self, triangle):
        view = PrefixView.whole(triangle)
        assert is_connected_subset(view, [0, 1, 2])

    def test_disconnected(self, two_cliques):
        view = PrefixView.whole(two_cliques)
        assert not is_connected_subset(view, [0, 5])


class TestBfsOrder:
    def test_distances(self):
        g = graph_from_arrays(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        view = PrefixView.whole(g)
        dist = bfs_order(view, 0, [True] * 5)
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_respects_alive(self):
        g = graph_from_arrays(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        view = PrefixView.whole(g)
        dist = bfs_order(view, 0, [True, True, False, True, True])
        assert dist == {0: 0, 1: 1}
