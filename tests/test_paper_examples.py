"""Every concrete fact the paper states about its running examples.

These are the strongest correctness anchors available: the paper names the
exact communities, influence values, peel traces, subgraph sizes and
keynode sets for the Figure-1 and Figure-3 graphs.
"""

from __future__ import annotations

import pytest

from repro import (
    LocalSearch,
    LocalSearchP,
    top_k_influential_communities,
)
from repro.core.count import construct_cvs
from repro.core.enumerate import enumerate_top_k
from repro.core.reference import (
    is_influential_community,
    reference_communities,
    reference_keynodes,
)
from repro.graph.subgraph import PrefixView
from repro.workloads.paper_examples import (
    FIGURE1_COMMUNITIES,
    FIGURE3_TOP4,
    figure1_graph,
    figure3_graph,
)


def members(graph, community):
    return frozenset(community.vertices)


class TestFigure1:
    """Section 1: exactly two influential 3-communities."""

    def test_exactly_two_communities(self, fig1):
        assert len(reference_communities(fig1, 3)) == 2

    def test_communities_match_paper(self, fig1):
        result = top_k_influential_communities(fig1, k=2, gamma=3)
        got = [(c.influence, members(fig1, c)) for c in result]
        assert got == FIGURE1_COMMUNITIES

    def test_non_maximal_subset_is_cohesive_but_rejected(self, fig1):
        """{v3, v4, v7, v8} has influence 13 and min degree 3, yet is not
        an influential community (not maximal)."""
        ranks = {fig1.rank_of(v) for v in ("v3", "v4", "v7", "v8")}
        assert not is_influential_community(fig1, ranks, 3)
        bigger = ranks | {fig1.rank_of("v9")}
        assert is_influential_community(fig1, bigger, 3)


class TestFigure3TopK:
    """Problem statement of Section 2: the top-4 for gamma=3, k=4."""

    def test_top4(self, fig3):
        result = top_k_influential_communities(fig3, k=4, gamma=3)
        got = [(c.influence, members(fig3, c)) for c in result]
        assert got == FIGURE3_TOP4

    def test_influences_strictly_decreasing(self, fig3):
        result = top_k_influential_communities(fig3, k=4, gamma=3)
        inf = result.influences
        assert inf == sorted(inf, reverse=True)
        assert len(set(inf)) == len(inf)


class TestExample21:
    """Example 2.1: the g1/g2 maximality discussion."""

    def test_g1_not_maximal(self, fig3):
        g1 = {fig3.rank_of(v) for v in ("v3", "v10", "v11", "v12", "v20")}
        assert not is_influential_community(fig3, g1, 3)

    def test_g2_is_community(self, fig3):
        g2 = {
            fig3.rank_of(v)
            for v in ("v3", "v9", "v10", "v11", "v12", "v13", "v20")
        }
        assert is_influential_community(fig3, g2, 3)

    def test_top1_is_community_despite_nesting(self, fig3):
        sub = {fig3.rank_of(v) for v in ("v3", "v11", "v12", "v20")}
        assert is_influential_community(fig3, sub, 3)


class TestDefinition31Keynodes:
    """Definition 3.1's worked example: v7 is a keynode, v6 is not."""

    def test_v7_is_keynode(self, fig3):
        keynodes = {fig3.label(r) for r in reference_keynodes(fig3, 3)}
        assert "v7" in keynodes

    def test_v6_is_not_keynode(self, fig3):
        keynodes = {fig3.label(r) for r in reference_keynodes(fig3, 3)}
        assert "v6" not in keynodes


class TestExample31Trace:
    """Example 3.1: the exact LocalSearch trace on Figure 3."""

    def test_tau1_is_weight_of_7th_vertex(self, fig3):
        searcher = LocalSearch(fig3, gamma=3)
        p1 = searcher.initial_prefix(4)  # k + gamma = 7
        assert p1 == 7
        assert fig3.threshold_for_prefix(p1) == 18.0  # omega(v11)

    def test_subgraph_sizes(self, fig3):
        # size(G>=18) = 7 vertices + 11 edges = 18
        assert fig3.prefix_size(7) == 18
        # size(G>=12) = 36, reached right after adding v5 (rank 12)
        assert fig3.prefix_size(13) == 36
        assert fig3.threshold_for_prefix(13) == 12.0

    def test_round_counts(self, fig3):
        result = LocalSearch(fig3, gamma=3).search(4)
        assert result.stats.prefixes == [7, 13]
        assert result.stats.prefix_sizes == [18, 36]
        assert result.stats.counts == [1, 4]


class TestExample32CountIC:
    """Example 3.2: keys/cvs of CountIC on G>=12 (Figure 6)."""

    @pytest.fixture()
    def record(self, fig3):
        return construct_cvs(PrefixView(fig3, 13), 3)

    def test_keys(self, fig3, record):
        assert [fig3.label(u) for u in record.keys] == [
            "v5", "v13", "v7", "v11",
        ]

    def test_count(self, record):
        assert record.num_communities == 4

    def test_initial_core_reduction_not_in_cvs(self, fig3, record):
        labels = {fig3.label(u) for u in record.cvs}
        assert labels.isdisjoint({"v9", "v17", "v18"})

    def test_groups_match_figure6(self, fig3, record):
        groups = [
            {fig3.label(u) for u in record.group(i)} for i in range(4)
        ]
        assert groups == [
            {"v5"},
            {"v13"},
            {"v7", "v16", "v6", "v1"},
            {"v11", "v20", "v3", "v12"},
        ]

    def test_each_group_starts_with_its_keynode(self, record):
        for i, u in enumerate(record.keys):
            assert record.group(i)[0] == u


class TestExample33EnumIC:
    """Example 3.3: the community forest built by EnumIC."""

    def test_children_links(self, fig3):
        record = construct_cvs(PrefixView(fig3, 13), 3)
        communities = enumerate_top_k(fig3, record, 4)
        by_key = {c.keynode_label: c for c in communities}
        # IC(v11) and IC(v7) have no children.
        assert by_key["v11"].children == []
        assert by_key["v7"].children == []
        # IC(v13) = gp(v13) + IC(v11); IC(v5) = gp(v5) + IC(v7).
        assert [c.keynode_label for c in by_key["v13"].children] == ["v11"]
        assert [c.keynode_label for c in by_key["v5"].children] == ["v7"]

    def test_lazy_sizes(self, fig3):
        record = construct_cvs(PrefixView(fig3, 13), 3)
        communities = enumerate_top_k(fig3, record, 4)
        by_key = {c.keynode_label: c for c in communities}
        assert by_key["v13"].num_vertices == 5
        assert len(by_key["v13"].own_vertices) == 1  # no copying


class TestLocalSearchPTrace:
    """Section 4's running example: round boundaries of LocalSearch-P."""

    def test_round1_top1_only(self, fig3):
        searcher = LocalSearchP(fig3, gamma=3)
        stream = searcher.stream()
        first = next(stream)
        assert members(fig3, first) == frozenset(
            {"v3", "v11", "v12", "v20"}
        )
        assert first.influence == 18.0

    def test_rounds_concatenate_to_full_peel(self, fig3):
        """The keys of round i+1 followed by round i equal the full keys."""
        full = construct_cvs(PrefixView(fig3, 13), 3)
        round1 = construct_cvs(PrefixView(fig3, 7), 3)
        round2 = construct_cvs(PrefixView(fig3, 13), 3, stop_rank=7)
        assert round2.keys + round1.keys == full.keys
        assert round2.cvs + round1.cvs == full.cvs

    def test_all_eight_communities_streamed(self, fig3):
        communities = list(LocalSearchP(fig3, gamma=3).stream())
        assert len(communities) == len(reference_communities(fig3, 3))
        influences = [c.influence for c in communities]
        assert influences == sorted(influences, reverse=True)
