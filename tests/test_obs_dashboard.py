"""The server-rendered dashboard and the on-demand profiler.

The dashboard contract: pure stdlib output, deterministic for a given
input, zero external fetches (no script/link/img tags, no absolute
URLs) — it must render inside an airgapped deployment.  The profiler
contract: one capture at a time, profiled calls counted, unarmed calls
untouched.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs.dashboard import render_dashboard
from repro.obs.profiling import OnDemandProfiler, ProfileBusyError
from repro.service.metrics import ServiceMetrics


def populated_snapshot():
    metrics = ServiceMetrics()
    for i in range(8):
        metrics.observe_query(
            "localsearch-p", 2.0 + i, "cold" if i % 2 else "cache"
        )
    metrics.observe_batch(4)
    metrics.observe_queue_depth(3)
    return metrics.snapshot()


def sample_points():
    points = []
    for i in range(6):
        points.append(
            {
                "t": 1000.0 + i,
                "dt": 1.0,
                "qps": 2.0 + i,
                "eps": 0.0,
                "error_rate": 0.0,
                "hit_rate": 0.5,
                "coalesce_rate": 0.25,
                "queue_depth": i,
                "workers": {"worker:0": i, "worker:1": 1},
                "families": {
                    "email|gamma=5": {
                        "queries": 4, "hit_rate": 0.5, "p95_ms": 3.0 + i,
                        "phases_ms": {
                            "peel": 1.25 + i, "enumerate": 0.5,
                            "csr_build": 0.1,
                        },
                    },
                    "wiki|gamma=10": {
                        "queries": 2, "hit_rate": 0.0, "p95_ms": 8.0
                    },
                },
                "latency_overall_ms": {"p50": 2.0, "p95": 6.0, "p99": 9.0},
            }
        )
    return points


def render_full():
    return render_dashboard(
        populated_snapshot(),
        points=sample_points(),
        slo_status={
            "ok": False,
            "window_s": 60.0,
            "objectives": {
                "p95_ms": {"target": 5.0, "value": 6.0, "ok": False},
                "err_rate": {"target": 0.01, "value": 0.0, "ok": True},
            },
        },
        breaches=[
            {
                "t": 1004.0,
                "objective": "p95_ms",
                "event": "breach",
                "value": 6.0,
                "target": 5.0,
            }
        ],
        slow_traces=[
            {
                "trace_id": "t123abc",
                "name": "query",
                "start_ms": 1.0,
                "duration_ms": 120.5,
                "spans": 4,
                "slow": True,
            }
        ],
        readiness={"ready": False, "reasons": ["slo breach: p95_ms"]},
        window_s=300.0,
    )


class TestDashboardRendering:
    def test_golden_substrings(self):
        html = render_dashboard(populated_snapshot())
        for needle in (
            "<!DOCTYPE html>",
            "<title>repro dashboard</title>",
            '<meta http-equiv="refresh"',
            'id="queues"',
        ):
            assert needle in html

    def test_full_page_sections(self):
        html = render_full()
        for spark in ("spark-qps", "spark-hit-rate", "spark-coalesce"):
            assert f'id="{spark}"' in html
        assert 'id="heatmap"' in html
        # The breakdown column: latest tick's peel/enumerate phases for
        # the family that has them, an em-dash for the one that doesn't.
        assert "peel 6.25 · enum 0.50" in html
        assert "kernel phases (ms)" in html
        assert 'id="slow-traces"' in html
        assert '<a href="/traces/t123abc">' in html
        assert 'id="slo"' in html
        assert 'id="breaches"' in html
        assert "not ready" in html
        assert "worker:0" in html and "worker:1" in html

    def test_no_external_fetches_or_scripts(self):
        for html in (render_dashboard(populated_snapshot()), render_full()):
            lowered = html.lower()
            assert "<script" not in lowered
            assert "<link" not in lowered
            assert "<img" not in lowered
            assert "http://" not in lowered
            assert "https://" not in lowered
            assert "@import" not in lowered

    def test_deterministic_output(self):
        assert render_full() == render_full()
        snap = populated_snapshot()
        points = sample_points()
        assert render_dashboard(snap, points=points) == render_dashboard(
            snap, points=points
        )

    def test_empty_state_renders(self):
        html = render_dashboard(ServiceMetrics().snapshot())
        assert "no data yet" in html
        assert "<title>repro dashboard</title>" in html

    def test_markup_is_escaped(self):
        html = render_dashboard(
            populated_snapshot(),
            slow_traces=[
                {
                    "trace_id": "<svg onload=x>",
                    "name": "<b>evil</b>",
                    "start_ms": 0.0,
                    "duration_ms": 1.0,
                    "spans": 1,
                    "slow": False,
                }
            ],
        )
        assert "<svg onload=x>" not in html
        assert "<b>evil</b>" not in html


class TestOnDemandProfiler:
    def test_unarmed_calls_pass_straight_through(self):
        profiler = OnDemandProfiler()
        assert not profiler.armed
        assert profiler.profile_call(lambda x: x * 2, 21) == 42

    def test_capture_counts_profiled_calls(self):
        profiler = OnDemandProfiler()
        stop = threading.Event()
        calls = {"n": 0}

        def pump():
            while not stop.is_set():
                profiler.profile_call(sum, range(200))
                calls["n"] += 1
                time.sleep(0.005)

        thread = threading.Thread(target=pump, daemon=True)
        thread.start()
        try:
            report = profiler.capture(0.3, top=5)
        finally:
            stop.set()
            thread.join(timeout=5.0)
        assert not profiler.armed
        assert report.startswith("profile: 0.3s window")
        assert "engine call" in report
        # The pstats table is present (calls happened during the window).
        assert "cumulative" in report
        assert calls["n"] > 0

    def test_empty_window_reports_hint(self):
        profiler = OnDemandProfiler()
        report = profiler.capture(0.05)
        assert "0 engine calls profiled" in report
        assert "no queries arrived" in report

    def test_concurrent_capture_raises_busy(self):
        profiler = OnDemandProfiler()
        results = {}
        started = threading.Event()

        def first():
            started.set()
            results["first"] = profiler.capture(0.4)

        thread = threading.Thread(target=first, daemon=True)
        thread.start()
        started.wait(5.0)
        time.sleep(0.05)  # let the capture actually take the slot
        with pytest.raises(ProfileBusyError):
            profiler.capture(0.1)
        thread.join(timeout=5.0)
        assert "profile:" in results["first"]
        # The slot frees once the first capture completes.
        assert "profile:" in profiler.capture(0.05)

    def test_bad_window_rejected_and_cap_applied(self, monkeypatch):
        profiler = OnDemandProfiler()
        with pytest.raises(ValueError):
            profiler.capture(0)
        with pytest.raises(ValueError):
            profiler.capture(-3)
        monkeypatch.setattr(OnDemandProfiler, "MAX_SECONDS", 0.1)
        report = profiler.capture(9999)  # clamped, returns promptly
        assert report.startswith("profile: 0.1s window")

    def test_profiled_exception_propagates_and_disarms_slot(self):
        profiler = OnDemandProfiler()
        try:
            profiler._profile = __import__("cProfile").Profile()
            with pytest.raises(RuntimeError):
                profiler.profile_call(_raise)
            # The call slot is released; the next call still works.
            assert profiler.profile_call(lambda: "ok") == "ok"
        finally:
            profiler._profile = None


def _raise():
    raise RuntimeError("boom")
