"""The adaptive control plane end to end: actuators, controller, server.

Covers the runtime-mutation surfaces (scheduler window, replica
fan-out, family re-placement, restart un-sticking), the controller's
dwell/audit behaviour against fake components, the export surfaces
(``/control.json``, dashboard panel, Prometheus series with hostile
tenant labels), the CLI's ``--adaptive`` precedence over the static
flags it demotes, wire tolerance for the optional ``tenant`` field, and
a full adaptive server over TCP rejecting an over-quota tenant.
"""

from __future__ import annotations

import asyncio
import io
import json
import urllib.request

import pytest

from repro.api.spec import QuerySpec, parse_spec_tokens
from repro.cli import main as cli_main
from repro.cluster import ClusterPool
from repro.control import (
    AdaptiveController,
    AdmissionController,
    BatchWindowPolicy,
)
from repro.control.policies import ControlState, Decision
from repro.errors import AdmissionRejected, QueryParameterError
from repro.obs.export import render_prometheus
from repro.server import BatchScheduler, ReproClient, ReproServer, ShardPool
from repro.service.cache import ResultCache
from repro.service.engine import QueryEngine
from repro.service.metrics import ServiceMetrics
from repro.service.registry import GraphRegistry
from repro.workloads.generators import build_weighted_graph, chung_lu

needs_mp = pytest.mark.skipif(
    not ClusterPool.available(), reason="multiprocessing unavailable"
)


def _graph(seed: int = 7):
    n, edges = chung_lu(180, avg_degree=6.0, seed=seed)
    return build_weighted_graph(n, edges, weights="degree", seed=seed)


def _stack(seed: int = 7):
    registry = GraphRegistry(preload_datasets=False)
    graph = _graph(seed)
    registry.register("g", lambda: graph)
    cache = ResultCache(16)
    metrics = ServiceMetrics()
    engine = QueryEngine(registry, cache=cache, metrics=metrics)
    return registry, cache, metrics, engine


# ----------------------------------------------------------------------
# actuators: scheduler + thread pool
# ----------------------------------------------------------------------
def test_scheduler_batch_window_is_runtime_tunable():
    registry, _, _, engine = _stack()
    pool = ShardPool(2)
    try:
        scheduler = BatchScheduler(engine, pool, window_s=0.025)
        assert scheduler.set_batch_window(0.0) == 0.0
        assert scheduler.window_s == 0.0
        scheduler.set_batch_window(0.010)
        assert scheduler.window_s == pytest.approx(0.010)
        with pytest.raises(ValueError):
            scheduler.set_batch_window(-0.001)
    finally:
        pool.shutdown()


def test_shard_pool_replica_steps_clamp_at_both_ends():
    pool = ShardPool(4)
    try:
        assert pool.replication_map() == {}
        assert pool.add_replica("hot") == 2
        assert pool.add_replica("hot") == 3
        assert pool.replication_map() == {"hot": 3}
        for _ in range(5):
            pool.add_replica("hot")
        assert pool.replication_map()["hot"] == 4  # ceiling: num_shards
        assert pool.remove_replica("hot") == 3
        for _ in range(5):
            pool.remove_replica("hot")
        assert pool.replication_map()["hot"] == 1  # floor: one copy
        # Widened rotation actually routes to more shards.
        pool.add_replica("hot")
        base = pool.home_shard("hot")
        assert {pool.route("hot") for _ in range(8)} == {
            base, (base + 1) % 4
        }
    finally:
        pool.shutdown()


# ----------------------------------------------------------------------
# actuators: cluster pool placement surfaces
# ----------------------------------------------------------------------
def test_cluster_pool_reassign_and_unstick_drop_placements():
    registry, cache, _, _ = _stack()
    pool = ClusterPool(4, registry, cache=cache)
    try:
        family = QuerySpec(graph="g", gamma=3, k=5).cache_key()
        index = pool.route(family)
        placements = pool.placements()
        [(label, tag)] = placements.items()
        assert tag == f"worker:{index}"
        # Reassign drops the sticky entry and reports the old home.
        assert pool.reassign_family(label) == tag
        assert pool.placements() == {}
        assert pool.reassign_family(label) is None  # already gone
        # Unstick drops every family pinned to one worker at once.
        again = pool.route(family)
        other = QuerySpec(graph="g", gamma=4, k=5).cache_key()
        pool.route(other)
        dropped = pool.unstick_worker(again)
        assert label in dropped
        assert all(
            not tag.endswith(f":{again}")
            for tag in pool.placements().values()
        )
    finally:
        pool.shutdown()


def test_cluster_remove_replica_unsticks_families_outside_the_set():
    registry, cache, _, _ = _stack()
    pool = ClusterPool(4, registry, cache=cache, replication={"g": 3})
    try:
        family = QuerySpec(graph="g", gamma=3, k=5).cache_key()
        base = pool.home_worker(family)
        # Park the family on the widest candidate (base+2).
        pool._workers[base].depth = 2
        pool._workers[(base + 1) % 4].depth = 2
        assert pool.route(family) == (base + 2) % 4
        pool._workers[base].depth = 0
        pool._workers[(base + 1) % 4].depth = 0
        # Shrinking to 2 copies leaves base+2 outside the candidate set:
        # the placement is dropped so the next dispatch re-places it.
        assert pool.remove_replica("g") == 2
        assert pool.placements() == {}
        assert pool.route(family) in {base, (base + 1) % 4}
        assert pool.replication_map() == {"g": 2}
    finally:
        pool.shutdown()


@needs_mp
def test_worker_restart_routes_through_controller_placement_policy():
    # The sticky-forever edge: without a controller, a restarted
    # worker's families march straight back to the same index; with one
    # bound, the restart hook un-sticks them and audits the decision.
    registry, cache, metrics, engine = _stack()
    pool = ClusterPool(2, registry, cache=cache, metrics=metrics)
    try:
        pool.execute(engine, QuerySpec(graph="g", gamma=3, k=4))
        [(label, tag)] = pool.placements().items()
        victim_index = int(tag.split(":")[1])

        # Baseline (no controller): placement survives the restart.
        victim = pool._workers[victim_index]
        victim.process.kill()
        victim.process.join()
        pool.health_check()
        assert pool.placements() == {label: tag}

        controller = AdaptiveController(metrics=metrics)
        controller.bind(pool=pool)
        assert pool.placement_hook is not None
        victim = pool._workers[victim_index]
        victim.process.kill()
        victim.process.join()
        status = pool.health_check()
        assert tag in status["restarted"]
        assert pool.placements() == {}  # un-stuck by the hook
        [entry] = controller.audit()
        assert entry["action"] == "unstick_worker"
        assert entry["target"] == f"worker:{victim_index}"
        assert entry["before"] == 1  # one family dropped
        assert metrics.snapshot()["control"]["decisions"] == {
            "placement": 1
        }
        # And the pool still serves: re-placement + reseed are live.
        result = pool.execute(engine, QuerySpec(graph="g", gamma=3, k=5))
        assert result.communities
    finally:
        pool.shutdown()


# ----------------------------------------------------------------------
# controller: dwell, audit, document
# ----------------------------------------------------------------------
class FakeHistory:
    def __init__(self):
        self.tick_list = []

    def ticks(self, window_s=None):
        return list(self.tick_list)


class FakeScheduler:
    def __init__(self, window_s=0.0):
        self.window_s = window_s
        self.queue_depth = 0

    def set_batch_window(self, window_s):
        if window_s < 0:
            raise ValueError("negative")
        self.window_s = float(window_s)
        return self.window_s


def make_ticks(depth=8, coalesce=True):
    base = {
        "queries_served": 0,
        "batches": 0,
        "batched_queries": 0,
        "queue_depth": depth,
        "replica_idle_dispatches": 0,
        "workers": {},
        "families": {},
        "latency_overall_ms": {},
    }
    newest = dict(
        base,
        queries_served=40,
        batches=10 if coalesce else 40,
        batched_queries=40,
    )
    return [dict(base, t=100.0), dict(newest, t=105.0)]


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now


def make_controller(**kwargs):
    history = FakeHistory()
    history.tick_list = make_ticks()
    scheduler = FakeScheduler()
    clock = FakeClock()
    kwargs.setdefault("policies", [BatchWindowPolicy()])
    controller = AdaptiveController(
        history=history,
        scheduler=scheduler,
        dwell_s=5.0,
        clock=clock,
        **kwargs,
    )
    return controller, history, scheduler, clock


def test_controller_applies_decisions_and_enforces_dwell():
    controller, history, scheduler, clock = make_controller()
    [decision] = controller.tick()
    assert decision.action == "set_window"
    assert scheduler.window_s == pytest.approx(0.005)
    # Same evidence inside the dwell window: suppressed.
    assert controller.tick() == []
    assert scheduler.window_s == pytest.approx(0.005)
    # After the dwell elapses the next step applies.
    clock.now += 6.0
    [second] = controller.tick()
    assert scheduler.window_s == pytest.approx(0.010)
    assert controller.decisions_applied == 2


def test_controller_makes_no_decisions_without_evidence():
    controller, history, scheduler, _ = make_controller()
    history.tick_list = []  # no ticks: no evidence, no action
    assert controller.tick() == []
    history.tick_list = make_ticks()[:1]  # one tick: still no pair
    assert controller.tick() == []
    assert scheduler.window_s == 0.0


def test_failed_actuation_is_audited_not_raised():
    controller, _, scheduler, _ = make_controller()

    def explode(window_s):
        raise RuntimeError("actuator detached")

    scheduler.set_batch_window = explode
    assert controller.tick() == []
    assert controller.decisions_failed == 1
    [entry] = controller.audit()
    assert entry["error"] == "RuntimeError"


def test_audit_ring_is_bounded():
    controller, history, scheduler, clock = make_controller(
        audit_capacity=3
    )
    for _ in range(10):
        clock.now += 10.0
        controller.tick()
    audit = controller.audit()
    assert len(audit) == 3
    assert controller.decisions_applied > 3  # the ring dropped the rest


def test_document_reports_loop_state_and_actuators():
    controller, _, scheduler, clock = make_controller(
        admission=AdmissionController(max_queue_depth=8)
    )
    controller.tick()
    doc = controller.document()
    assert doc["running"] is False  # tick() driven by hand here
    assert doc["policies"] == ["batch_window"]
    assert doc["decisions_applied"] == 1
    assert doc["batch_window_ms"] == pytest.approx(5.0)
    assert doc["admission"]["max_queue_depth"] == 8
    assert json.dumps(doc)  # JSON-serialisable end to end


def test_controller_validates_geometry():
    with pytest.raises(ValueError):
        AdaptiveController(interval_s=0.0)
    with pytest.raises(ValueError):
        AdaptiveController(interval_s=2.0, window_s=1.0)
    with pytest.raises(ValueError):
        AdaptiveController(audit_capacity=0)
    with pytest.raises(RuntimeError):
        AdaptiveController().start()  # no history bound


def test_bind_fills_only_missing_slots():
    scheduler = FakeScheduler()
    controller = AdaptiveController(scheduler=scheduler)
    other = FakeScheduler(window_s=9.0)
    history = FakeHistory()
    controller.bind(history=history, scheduler=other)
    assert controller.scheduler is scheduler  # explicit wins
    assert controller.history is history  # gap filled


# ----------------------------------------------------------------------
# wire: the optional tenant field
# ----------------------------------------------------------------------
def test_tenant_is_absent_from_wire_unless_set():
    spec = QuerySpec(graph="g", gamma=3, k=5)
    assert "tenant" not in spec.to_wire_dict()
    tagged = QuerySpec(graph="g", gamma=3, k=5, tenant="acme")
    wire = tagged.to_wire_dict()
    assert wire["tenant"] == "acme"
    assert QuerySpec.from_wire(wire).tenant == "acme"
    assert QuerySpec.from_wire(spec.to_wire_dict()).tenant is None
    # Identity is unchanged: tenant never reaches the cache key.
    assert tagged.cache_key() == spec.cache_key()


def test_tenant_parses_from_query_tokens_and_validates():
    spec, _ = parse_spec_tokens(
        ["g", "k=3", "gamma=3", "tenant=acme"]
    )
    assert spec.tenant == "acme"
    with pytest.raises(QueryParameterError):
        QuerySpec(graph="g", gamma=3, k=5, tenant="")


# ----------------------------------------------------------------------
# export: Prometheus series + escaping
# ----------------------------------------------------------------------
def test_control_series_export_with_hostile_tenant_labels():
    metrics = ServiceMetrics()
    metrics.observe_control_decision("batch_window")
    metrics.observe_control_decision("batch_window")
    metrics.observe_control_decision("placement")
    hostile = 'ac"me\\corp\nltd'
    metrics.observe_admission_rejected(hostile)
    metrics.observe_admission_rejected(None)
    text = render_prometheus(metrics.snapshot())
    assert (
        'repro_control_decisions_total{policy="batch_window"} 2' in text
    )
    assert 'repro_control_decisions_total{policy="placement"} 1' in text
    assert 'repro_admission_rejected_total{tenant="-"} 1' in text
    # Label escaping: backslash, quote, and newline all neutralised.
    assert (
        'repro_admission_rejected_total'
        '{tenant="ac\\"me\\\\corp\\nltd"} 1' in text
    )
    for line in text.splitlines():
        assert "\n" not in line  # no raw newlines smuggled into labels


def test_metrics_without_control_traffic_export_no_control_series():
    text = render_prometheus(ServiceMetrics().snapshot())
    assert "repro_control_decisions_total" not in text
    assert "repro_admission_rejected_total" not in text


# ----------------------------------------------------------------------
# CLI: --adaptive demotes the static flags to initial values
# ----------------------------------------------------------------------
def test_cli_adaptive_is_network_only():
    out = io.StringIO()
    code = cli_main(
        ["serve", "--adaptive"], out=out, in_stream=io.StringIO("")
    )
    assert code == 2
    assert "--adaptive" in out.getvalue()


def test_cli_help_demotes_static_flags_under_adaptive():
    from repro.cli import build_parser

    text = build_parser().parse_args(["serve"])  # flags exist
    assert text.adaptive is False
    help_text = None
    for action in build_parser()._subparsers._group_actions[0].choices[
        "serve"
    ]._actions:
        if "--batch-window-ms" in action.option_strings:
            assert "INITIAL" in action.help
        if "--replicate" in action.option_strings:
            assert "INITIAL" in action.help
        if "--adaptive" in action.option_strings:
            help_text = action.help
    assert help_text is not None


def test_adaptive_server_treats_flags_as_initial_values():
    async def run():
        server = ReproServer(
            preload_datasets=False,
            adaptive=True,
            batch_window_ms=25.0,
            shards=2,
        )
        await server.start(tcp=("127.0.0.1", 0))
        try:
            # The static flag seeded the scheduler...
            assert server.scheduler.window_s == pytest.approx(0.025)
            controller = server.controller
            assert controller is not None and controller.running
            # ...and the controller owns it from here: same surface.
            controller.scheduler.set_batch_window(0.010)
            assert server.scheduler.window_s == pytest.approx(0.010)
            assert controller.admission is not None
        finally:
            await server.stop()

    asyncio.run(run())


# ----------------------------------------------------------------------
# end to end: adaptive server over TCP
# ----------------------------------------------------------------------
def test_adaptive_server_serves_control_json_dashboard_and_quotas():
    async def run():
        registry_graph = _graph(3)
        server = ReproServer(
            preload_datasets=False,
            adaptive=True,
            metrics_port=0,
            shards=2,
        )
        server.registry.register("g", lambda: registry_graph)
        await server.start(tcp=("127.0.0.1", 0))
        try:
            host, port = server.tcp_address
            client = await ReproClient.connect(host=host, port=port)
            lines = await client.request("query g k=3 gamma=3 tenant=acme")
            assert any("communities" in line for line in lines)

            mhost, mport = server.metrics_address
            base = f"http://{mhost}:{mport}"
            doc = json.loads(
                urllib.request.urlopen(f"{base}/control.json").read()
            )
            assert doc["running"] is True
            assert doc["policies"] == [
                "batch_window", "replicas", "placement",
            ]
            assert doc["admission"]["max_queue_depth"] >= 64

            # Choke acme's quota: the next request 429s, anonymous and
            # other tenants keep flowing, and every surface records it.
            server.controller.admission.set_quota("acme", 0.001, burst=1)
            await client.request("query g k=3 gamma=3 tenant=acme")
            [rejection, *_] = await client.request(
                "query g k=3 gamma=3 tenant=acme"
            )
            assert rejection.startswith("error: admission rejected (429")
            assert "acme" in rejection
            ok = await client.request("query g k=3 gamma=3")
            assert not ok[0].startswith("error:")

            snap = server.metrics.snapshot()
            assert snap["control"]["admission_rejected"] == {"acme": 1}
            prom = (
                urllib.request.urlopen(f"{base}/metrics").read().decode()
            )
            assert (
                'repro_admission_rejected_total{tenant="acme"} 1' in prom
            )
            page = (
                urllib.request.urlopen(f"{base}/dashboard").read().decode()
            )
            assert 'id="controller"' in page
            assert 'id="admission"' in page
            assert 'id="tenant-rejects"' in page
            assert "acme" in page
            await client.close()
        finally:
            await server.stop()
        # stop() tears the loop down with the server.
        assert server.controller.running is False

    asyncio.run(run())


def test_control_json_is_404_without_adaptive():
    async def run():
        server = ReproServer(
            preload_datasets=False, metrics_port=0, shards=2
        )
        await server.start(tcp=("127.0.0.1", 0))
        try:
            assert server.controller is None
            mhost, mport = server.metrics_address
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(
                    f"http://{mhost}:{mport}/control.json"
                )
            assert err.value.code == 404
        finally:
            await server.stop()

    import urllib.error

    asyncio.run(run())


def test_caller_supplied_controller_is_bound_not_replaced():
    async def run():
        admission = AdmissionController(max_queue_depth=7)
        controller = AdaptiveController(
            admission=admission, interval_s=0.05, window_s=0.5, dwell_s=0.1
        )
        server = ReproServer(
            preload_datasets=False, controller=controller, shards=2
        )
        await server.start(tcp=("127.0.0.1", 0))
        try:
            assert server.controller is controller
            assert controller.scheduler is server.scheduler
            assert controller.history is server.history
            assert controller.running
            assert admission.metrics is server.metrics
        finally:
            await server.stop()

    asyncio.run(run())
