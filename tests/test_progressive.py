"""LocalSearch-P (Algorithm 4) tests: streaming order, equivalence."""

from __future__ import annotations

import pytest

from repro import LocalSearchP, progressive_influential_communities
from repro.core.reference import reference_communities
from repro.errors import QueryParameterError
from tests.conftest import random_graph


class TestValidation:
    def test_bad_gamma(self, fig3):
        with pytest.raises(QueryParameterError):
            LocalSearchP(fig3, gamma=0)

    def test_bad_delta(self, fig3):
        with pytest.raises(QueryParameterError):
            LocalSearchP(fig3, gamma=2, delta=0.5)


class TestStreaming:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("gamma", [1, 2, 3])
    def test_stream_matches_reference_in_order(self, seed, gamma):
        g = random_graph(18, 0.3, seed, weights="shuffled")
        got = [
            (c.influence, frozenset(c.vertex_ranks))
            for c in LocalSearchP(g, gamma=gamma).stream()
        ]
        assert got == reference_communities(g, gamma)

    def test_strictly_decreasing_influence(self, email_graph):
        influences = []
        for community in LocalSearchP(email_graph, gamma=5).stream():
            influences.append(community.influence)
            if len(influences) >= 40:
                break
        assert influences == sorted(influences, reverse=True)
        assert len(set(influences)) == len(influences)

    def test_early_termination_cheaper_than_full(self, email_graph):
        searcher_small = LocalSearchP(email_graph, gamma=5)
        searcher_small.run(k=1)
        searcher_large = LocalSearchP(email_graph, gamma=5)
        searcher_large.run(k=50)
        assert (
            searcher_small.stats.accessed_size
            <= searcher_large.stats.accessed_size
        )

    def test_run_with_k(self, fig3):
        result = LocalSearchP(fig3, gamma=3).run(k=2)
        assert len(result.communities) == 2

    def test_run_all(self, fig3):
        result = LocalSearchP(fig3, gamma=3).run()
        assert len(result.communities) == 8

    def test_convenience_generator(self, fig3):
        influences = [
            c.influence
            for c in progressive_influential_communities(fig3, gamma=3)
        ]
        assert influences == sorted(influences, reverse=True)

    def test_empty_result_when_gamma_too_big(self, two_cliques):
        assert LocalSearchP(two_cliques, gamma=5).run().communities == []

    def test_single_vertex_graph(self):
        from repro.graph.builder import graph_from_arrays

        g = graph_from_arrays(1, [])
        assert LocalSearchP(g, gamma=1).run().communities == []


class TestEquivalenceWithNonProgressive:
    @pytest.mark.parametrize("k", [1, 3, 5])
    def test_same_top_k(self, email_graph, k):
        from repro import top_k_influential_communities

        batch = top_k_influential_communities(email_graph, k=k, gamma=8)
        stream = LocalSearchP(email_graph, gamma=8).run(k=k)
        assert [
            (c.influence, frozenset(c.vertex_ranks)) for c in batch
        ] == [
            (c.influence, frozenset(c.vertex_ranks))
            for c in stream.communities
        ]

    @pytest.mark.parametrize("delta", [1.5, 2.0, 4.0, 16.0])
    def test_delta_invariance(self, fig3, delta):
        got = [
            (c.influence, frozenset(c.vertex_ranks))
            for c in LocalSearchP(fig3, gamma=3, delta=delta).stream()
        ]
        assert got == reference_communities(fig3, 3)


class TestTimestamps:
    def test_monotone_latencies(self, email_graph):
        latencies = []
        for _, seconds in LocalSearchP(
            email_graph, gamma=5
        ).stream_with_timestamps():
            latencies.append(seconds)
            if len(latencies) >= 20:
                break
        assert latencies == sorted(latencies)
