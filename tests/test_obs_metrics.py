"""ServiceMetrics satellites: snapshot purity, error kinds, bounding."""

from __future__ import annotations

import io
import json

import pytest

from repro.api.spec import FamilyKey
from repro.graph.builder import graph_from_arrays
from repro.service import (
    GraphRegistry,
    QueryEngine,
    ResultCache,
    ServiceMetrics,
    ServiceShell,
    SessionManager,
)
from repro.service.metrics import family_label


def k4():
    return graph_from_arrays(
        4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
    )


def family(graph="g", gamma=2, delta=2.0):
    return FamilyKey(
        graph=graph, gamma=gamma, algorithm="localsearch-p",
        delta=delta, kernel="fastpeel",
    )


class TestSnapshotPurity:
    def test_fresh_snapshot_has_empty_by_source(self):
        # Regression: cache_hit_rate used to *index* the by_source
        # defaultdict, materialising zero-count keys on a pure read.
        metrics = ServiceMetrics()
        assert metrics.cache_hit_rate == 0.0
        snap = metrics.snapshot()
        assert snap["by_source"] == {}
        assert snap["by_error"] == {}
        assert snap["queries_served"] == 0

    def test_hit_rate_read_does_not_mutate(self):
        metrics = ServiceMetrics()
        metrics.observe_query("localsearch-p", 1.0, "cold")
        _ = metrics.cache_hit_rate
        assert set(metrics.snapshot()["by_source"]) == {"cold"}


def populated_metrics():
    """Every snapshot table populated at least once."""
    metrics = ServiceMetrics()
    for i, source in enumerate(("cold", "cache", "coalesced")):
        metrics.observe_query(
            "localsearch-p",
            1.0 + i,
            source,
            kernel="python",
            family=family(),
            backend="process",
            worker="worker:0",
        )
    metrics.observe_error(kind="ValueError")
    metrics.session_opened()
    metrics.connection_opened()
    metrics.observe_batch(2)
    metrics.observe_queue_depth(3)
    metrics.observe_segment_attach("create")
    metrics.observe_worker_restart()
    metrics.observe_cluster_depth("worker:0", 2)
    return metrics


class TestSnapshotIsolation:
    """The snapshot() defensive-copy contract, both directions.

    The history collector retains snapshots for minutes; a container
    aliasing live state would silently rewrite retained ticks (and a
    caller scribbling on a snapshot must never reach the live tables).
    """

    MUTABLE_PATHS = (
        ("by_source",),
        ("by_algorithm",),
        ("by_kernel",),
        ("by_backend",),
        ("by_error",),
        ("by_family",),
        ("latency_ms",),
        ("latency_overall_ms",),
        ("server",),
        ("cluster",),
        ("cluster", "by_worker"),
        ("cluster", "queue_depth"),
        ("cluster", "segment_attaches"),
    )

    @staticmethod
    def _dig(snap, path):
        node = snap
        for key in path:
            node = node[key]
        return node

    def test_later_mutation_does_not_rewrite_snapshot(self):
        metrics = populated_metrics()
        before = metrics.snapshot()
        frozen = json.dumps(before, sort_keys=True, default=str)
        # Keep observing: every table the snapshot carries moves.
        metrics.observe_query(
            "forward", 9.0, "cold", kernel="numpy",
            family=family(gamma=9), backend="process", worker="worker:1",
        )
        metrics.observe_error(kind="OSError")
        metrics.observe_batch(5)
        metrics.observe_cluster_depth("worker:1", 7)
        metrics.observe_segment_attach("attach")
        assert json.dumps(before, sort_keys=True, default=str) == frozen

    def test_mutating_snapshot_does_not_leak_into_live_state(self):
        metrics = populated_metrics()
        snap = metrics.snapshot()
        # Resolve every node before clearing any: clearing a parent
        # first would make its nested paths unreachable.
        nodes = [(path, self._dig(snap, path)) for path in self.MUTABLE_PATHS]
        for path, node in nodes:
            assert isinstance(node, dict), path
            node.clear()
            node["poisoned"] = 1
        for row in snap.get("by_family", {}).values():
            if isinstance(row, dict):
                row["poisoned"] = 1
        clean = metrics.snapshot()
        for path in self.MUTABLE_PATHS:
            node = self._dig(clean, path)
            assert "poisoned" not in node, path
        assert clean["by_source"]["cold"] == 1
        assert clean["cluster"]["queue_depth"] == {"worker:0": 2}

    def test_snapshot_containers_are_distinct_objects(self):
        metrics = populated_metrics()
        first, second = metrics.snapshot(), metrics.snapshot()
        for path in self.MUTABLE_PATHS:
            a, b = self._dig(first, path), self._dig(second, path)
            assert a is not b, path
            assert a == b, path


class TestErrorKinds:
    def test_observe_error_counts_by_kind(self):
        metrics = ServiceMetrics()
        metrics.observe_error(kind="UnknownGraphError")
        metrics.observe_error(kind="UnknownGraphError")
        metrics.observe_error()  # kind-less errors still count
        snap = metrics.snapshot()
        assert snap["errors"] == 3
        assert snap["by_error"] == {"UnknownGraphError": 2}

    def test_shell_error_path_records_kind(self):
        registry = GraphRegistry(preload_datasets=False)
        registry.register("g", k4)
        metrics = ServiceMetrics()
        shell = ServiceShell(
            QueryEngine(registry, cache=ResultCache(), metrics=metrics),
            SessionManager(registry),
            io.StringIO(),
            metrics=metrics,
        )
        assert shell.execute_line("query missing k=1 gamma=2")
        by_error = metrics.snapshot()["by_error"]
        assert by_error == {"UnknownGraphError": 1}


class TestBounding:
    def test_family_table_evicts_least_recently_active(self):
        metrics = ServiceMetrics(max_families=4)
        families = [family(gamma=g) for g in range(2, 8)]
        for fam in families:
            metrics.observe_query(
                "localsearch-p", 1.0, "cold", family=fam
            )
        rows = metrics.by_family()
        assert len(rows) == 4
        kept = {family_label(fam) for fam in families[-4:]}
        assert set(rows) == kept

    def test_family_activity_refreshes_lru_position(self):
        metrics = ServiceMetrics(max_families=2)
        first, second, third = (family(gamma=g) for g in (2, 3, 4))
        metrics.observe_query("localsearch-p", 1.0, "cold", family=first)
        metrics.observe_query("localsearch-p", 1.0, "cold", family=second)
        metrics.observe_query("localsearch-p", 1.0, "cache", family=first)
        metrics.observe_query("localsearch-p", 1.0, "cold", family=third)
        rows = metrics.by_family()
        assert family_label(first) in rows  # refreshed, so second fell out
        assert family_label(second) not in rows
        assert rows[family_label(first)]["queries"] == 2

    def test_reservoirs_are_bounded(self):
        metrics = ServiceMetrics(max_samples=8)
        fam = family()
        for n in range(100):
            metrics.observe_query(
                "localsearch-p", float(n), "cold", family=fam
            )
        assert metrics._latency_ms["localsearch-p"].maxlen == 8
        assert len(metrics._latency_ms["localsearch-p"]) == 8
        row = metrics.by_family()[family_label(fam)]
        # Percentiles reflect only the newest max_samples values.
        assert row["p50_ms"] >= 92.0
        assert row["queries"] == 100

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            ServiceMetrics(max_samples=0)
        with pytest.raises(ValueError):
            ServiceMetrics(max_families=0)


class TestFamilyLabel:
    def test_label_is_stable_and_json_safe(self):
        label = family_label(family())
        assert label == "g|gamma=2|localsearch-p|delta=2|kernel=fastpeel"
        assert family_label(family()) == label

    def test_label_distinguishes_fields(self):
        assert family_label(family(gamma=2)) != family_label(family(gamma=3))
        assert family_label(family(delta=2.0)) != family_label(
            family(delta=2.5)
        )


class TestFamilyPhases:
    def test_phases_snapshot_lands_in_family_row(self):
        metrics = ServiceMetrics()
        fam = family()
        metrics.observe_query(
            "localsearch-p", 2.0, "cold", family=fam,
            phases={"peel": 1.5, "enumerate": 0.25},
        )
        row = metrics.by_family()[family_label(fam)]
        assert row["phases_ms"] == {"peel": 1.5, "enumerate": 0.25}

    def test_cache_hit_without_phases_keeps_previous_breakdown(self):
        metrics = ServiceMetrics()
        fam = family()
        metrics.observe_query(
            "localsearch-p", 2.0, "cold", family=fam,
            phases={"peel": 1.5, "enumerate": 0.25},
        )
        metrics.observe_query("localsearch-p", 0.1, "cache", family=fam)
        row = metrics.by_family()[family_label(fam)]
        assert row["phases_ms"] == {"peel": 1.5, "enumerate": 0.25}
        assert row["queries"] == 2

    def test_phases_rows_are_defensive_copies(self):
        metrics = ServiceMetrics()
        fam = family()
        phases = {"peel": 1.0}
        metrics.observe_query(
            "localsearch-p", 1.0, "cold", family=fam, phases=phases
        )
        phases["peel"] = 99.0  # the caller's dict is never aliased
        row = metrics.by_family()[family_label(fam)]
        assert row["phases_ms"] == {"peel": 1.0}
        row["phases_ms"]["poisoned"] = 1  # nor is the reported row
        clean = metrics.by_family()[family_label(fam)]
        assert "poisoned" not in clean["phases_ms"]

    def test_family_without_phases_reports_empty_breakdown(self):
        metrics = ServiceMetrics()
        fam = family()
        metrics.observe_query("localsearch-p", 1.0, "cold", family=fam)
        assert metrics.by_family()[family_label(fam)]["phases_ms"] == {}
