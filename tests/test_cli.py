"""CLI tests: all subcommands end to end."""

from __future__ import annotations

import io

import pytest

from repro.cli import build_parser, main
from repro.graph.io import write_edge_list, write_weights


@pytest.fixture()
def edge_file(tmp_path):
    path = tmp_path / "g.txt"
    # Two K4s with a weak bridge.
    edges = [
        (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
        (4, 5), (4, 6), (4, 7), (5, 6), (5, 7), (6, 7),
        (3, 4),
    ]
    write_edge_list(path, edges)
    return str(path)


@pytest.fixture()
def weight_file(tmp_path):
    path = tmp_path / "w.txt"
    write_weights(path, {i: float(10 - i) for i in range(8)})
    return str(path)


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_requires_graph_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query"])

    def test_dataset_and_edges_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["query", "--dataset", "email", "--edges", "x"]
            )


class TestStats:
    def test_stats_on_file(self, edge_file):
        code, text = run_cli(["stats", "--edges", edge_file])
        assert code == 0
        assert "#vertices: 8" in text
        assert "#edges: 13" in text
        assert "gammamax: 3" in text

    def test_stats_on_dataset(self):
        code, text = run_cli(["stats", "--dataset", "email"])
        assert code == 0
        assert "#vertices: 2,000" in text


class TestQuery:
    @pytest.mark.parametrize(
        "algorithm",
        ["localsearch", "localsearch-p", "forward", "onlineall", "backward"],
    )
    def test_algorithms_agree(self, edge_file, weight_file, algorithm):
        code, text = run_cli([
            "query", "--edges", edge_file, "--weights", weight_file,
            "--k", "2", "--gamma", "3", "--algorithm", algorithm,
        ])
        assert code == 0
        assert "2 communities" in text
        assert "top-1" in text and "top-2" in text
        # With weights 10..3, the heavy K4 {0,1,2,3} has influence 7.
        assert "influence=7" in text

    def test_members_flag(self, edge_file, weight_file):
        code, text = run_cli([
            "query", "--edges", edge_file, "--weights", weight_file,
            "--k", "1", "--gamma", "3", "--members",
        ])
        assert code == 0
        assert "members:" in text

    def test_truss_algorithm(self, edge_file, weight_file):
        code, text = run_cli([
            "query", "--edges", edge_file, "--weights", weight_file,
            "--k", "1", "--gamma", "4", "--algorithm", "truss",
        ])
        assert code == 0
        assert "size=4" in text

    def test_noncontainment_algorithm(self, edge_file, weight_file):
        # Only the heavy K4 is non-containment: the influence-3 community
        # is the whole graph, which contains it (Definition 5.1).
        code, text = run_cli([
            "query", "--edges", edge_file, "--weights", weight_file,
            "--k", "2", "--gamma", "3", "--algorithm", "noncontainment",
        ])
        assert code == 0
        assert "1 communities" in text
        assert "influence=7" in text

    def test_query_on_dataset(self):
        code, text = run_cli([
            "query", "--dataset", "email", "--k", "3", "--gamma", "5",
        ])
        assert code == 0
        assert "3 communities" in text


class TestStream:
    def test_limit(self, edge_file, weight_file):
        code, text = run_cli([
            "stream", "--edges", edge_file, "--weights", weight_file,
            "--gamma", "3", "--limit", "1",
        ])
        assert code == 0
        assert "limit 1 reached" in text

    def test_min_influence(self, edge_file, weight_file):
        code, text = run_cli([
            "stream", "--edges", edge_file, "--weights", weight_file,
            "--gamma", "3", "--min-influence", "6.5",
        ])
        assert code == 0
        assert "top-1" in text
        assert "fell below" in text

    def test_decreasing_influences(self, edge_file, weight_file):
        code, text = run_cli([
            "stream", "--edges", edge_file, "--weights", weight_file,
            "--gamma", "3",
        ])
        values = [
            float(line.split("influence=")[1].split()[0])
            for line in text.splitlines()
            if "influence=" in line
        ]
        assert values == sorted(values, reverse=True)
        assert len(values) == 2
