"""CLI tests: all subcommands end to end."""

from __future__ import annotations

import io

import pytest

from repro.cli import build_parser, main
from repro.graph.io import write_edge_list, write_weights


@pytest.fixture()
def edge_file(tmp_path):
    path = tmp_path / "g.txt"
    # Two K4s with a weak bridge.
    edges = [
        (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
        (4, 5), (4, 6), (4, 7), (5, 6), (5, 7), (6, 7),
        (3, 4),
    ]
    write_edge_list(path, edges)
    return str(path)


@pytest.fixture()
def weight_file(tmp_path):
    path = tmp_path / "w.txt"
    write_weights(path, {i: float(10 - i) for i in range(8)})
    return str(path)


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_requires_graph_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query"])

    def test_dataset_and_edges_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["query", "--dataset", "email", "--edges", "x"]
            )


class TestStats:
    def test_stats_on_file(self, edge_file):
        code, text = run_cli(["stats", "--edges", edge_file])
        assert code == 0
        assert "#vertices: 8" in text
        assert "#edges: 13" in text
        assert "gammamax: 3" in text

    def test_stats_on_dataset(self):
        code, text = run_cli(["stats", "--dataset", "email"])
        assert code == 0
        assert "#vertices: 2,000" in text


class TestQuery:
    @pytest.mark.parametrize(
        "algorithm",
        ["localsearch", "localsearch-p", "forward", "onlineall", "backward"],
    )
    def test_algorithms_agree(self, edge_file, weight_file, algorithm):
        code, text = run_cli([
            "query", "--edges", edge_file, "--weights", weight_file,
            "--k", "2", "--gamma", "3", "--algorithm", algorithm,
        ])
        assert code == 0
        assert "2 communities" in text
        assert "top-1" in text and "top-2" in text
        # With weights 10..3, the heavy K4 {0,1,2,3} has influence 7.
        assert "influence=7" in text

    def test_members_flag(self, edge_file, weight_file):
        code, text = run_cli([
            "query", "--edges", edge_file, "--weights", weight_file,
            "--k", "1", "--gamma", "3", "--members",
        ])
        assert code == 0
        assert "members:" in text

    def test_truss_algorithm(self, edge_file, weight_file):
        code, text = run_cli([
            "query", "--edges", edge_file, "--weights", weight_file,
            "--k", "1", "--gamma", "4", "--algorithm", "truss",
        ])
        assert code == 0
        assert "size=4" in text

    def test_noncontainment_algorithm(self, edge_file, weight_file):
        # Only the heavy K4 is non-containment: the influence-3 community
        # is the whole graph, which contains it (Definition 5.1).
        code, text = run_cli([
            "query", "--edges", edge_file, "--weights", weight_file,
            "--k", "2", "--gamma", "3", "--algorithm", "noncontainment",
        ])
        assert code == 0
        assert "1 communities" in text
        assert "influence=7" in text

    def test_query_on_dataset(self):
        code, text = run_cli([
            "query", "--dataset", "email", "--k", "3", "--gamma", "5",
        ])
        assert code == 0
        assert "3 communities" in text


class TestStream:
    def test_limit(self, edge_file, weight_file):
        code, text = run_cli([
            "stream", "--edges", edge_file, "--weights", weight_file,
            "--gamma", "3", "--limit", "1",
        ])
        assert code == 0
        assert "limit 1 reached" in text

    def test_min_influence(self, edge_file, weight_file):
        code, text = run_cli([
            "stream", "--edges", edge_file, "--weights", weight_file,
            "--gamma", "3", "--min-influence", "6.5",
        ])
        assert code == 0
        assert "top-1" in text
        assert "fell below" in text

    def test_decreasing_influences(self, edge_file, weight_file):
        code, text = run_cli([
            "stream", "--edges", edge_file, "--weights", weight_file,
            "--gamma", "3",
        ])
        values = [
            float(line.split("influence=")[1].split()[0])
            for line in text.splitlines()
            if "influence=" in line
        ]
        assert values == sorted(values, reverse=True)
        assert len(values) == 2


class TestServe:
    """The stdio serving loop (`repro serve`) and its shell behaviours."""

    def run_serve(self, script: str, *extra_args):
        out = io.StringIO()
        code = main(
            ["serve", "--no-datasets", *extra_args],
            out=out,
            in_stream=io.StringIO(script),
        )
        return code, out.getvalue()

    def test_load_query_quit(self, edge_file, weight_file):
        code, text = self.run_serve(
            f"load g {edge_file} {weight_file}\n"
            "query g k=2 gamma=3\n"
            "quit\n"
        )
        assert code == 0
        assert "loaded 'g' v1" in text
        assert "top-1:" in text

    def test_eof_without_quit_is_clean(self, edge_file):
        code, text = self.run_serve(f"load g {edge_file}\n")
        assert code == 0

    def test_shutdown_command_ends_loop_and_fires_callback(self, edge_file):
        from repro.service import (
            GraphRegistry,
            QueryEngine,
            ServiceShell,
            SessionManager,
        )

        registry = GraphRegistry(preload_datasets=False)
        engine = QueryEngine(registry)
        sessions = SessionManager(registry)
        out = io.StringIO()
        fired = []
        shell = ServiceShell(
            engine, sessions, out, on_shutdown=lambda: fired.append(True)
        )
        code = shell.run(io.StringIO("shutdown\nquery g\n"))
        assert code == 0
        assert fired == [True]
        assert "shutting down" in out.getvalue()
        # The loop ended at `shutdown`: the next command never ran.
        assert "error" not in out.getvalue()

    def test_broken_pipe_mid_loop_is_clean(self, edge_file):
        from repro.service import (
            GraphRegistry,
            QueryEngine,
            ServiceShell,
            SessionManager,
        )

        class BrokenOut(io.StringIO):
            def write(self, text):
                if "top-" in text:
                    raise BrokenPipeError("peer went away")
                return super().write(text)

        registry = GraphRegistry(preload_datasets=False)
        registry.register_edge_list("g", edge_file)
        engine = QueryEngine(registry)
        shell = ServiceShell(engine, SessionManager(registry), BrokenOut())
        code = shell.run(io.StringIO("query g k=1 gamma=3\nquery g\n"))
        assert code == 0

    def test_script_flag(self, tmp_path, edge_file):
        script = tmp_path / "commands.txt"
        script.write_text(
            f"load g {edge_file}\nquery g k=1 gamma=3\nquit\n",
            encoding="utf-8",
        )
        code, text = run_cli(["serve", "--no-datasets", "--script", str(script)])
        assert code == 0
        assert "top-1:" in text

    def test_max_cached_k_flag_accepted(self, edge_file):
        code, text = self.run_serve(
            f"load g {edge_file}\nquery g k=2 gamma=3\nquit\n",
            "--max-cached-k", "1",
        )
        assert code == 0
        assert "top-2:" in text  # served in full despite the retention cap


class TestServerFlags:
    """Parsing of the asyncio-server flags (the server itself is covered
    in tests/test_server_transport.py)."""

    def test_parser_accepts_network_flags(self):
        args = build_parser().parse_args([
            "serve", "--tcp", "0.0.0.0:8642", "--socket", "/tmp/x.sock",
            "--shards", "2", "--replicate", "wiki=2", "--max-batch", "16",
            "--batch-window-ms", "2.5", "--warmstart", "cache.json",
            "--max-cached-k", "64",
        ])
        assert args.tcp == "0.0.0.0:8642"
        assert args.shards == 2
        assert args.replicate == ["wiki=2"]

    def test_parse_tcp(self):
        from repro.cli import _parse_tcp

        assert _parse_tcp("8642") == ("127.0.0.1", 8642)
        assert _parse_tcp("0.0.0.0:9000") == ("0.0.0.0", 9000)
        with pytest.raises(SystemExit):
            _parse_tcp("not-a-port")

    def test_parse_replication(self):
        from repro.cli import _parse_replication

        assert _parse_replication(None) == {}
        assert _parse_replication(["wiki=2", "email=1"]) == {
            "wiki": 2, "email": 1,
        }
        for bad in ("wiki", "wiki=", "wiki=0", "=2"):
            with pytest.raises(SystemExit):
                _parse_replication([bad])

    def test_tcp_serve_roundtrip(self, tmp_path, edge_file):
        """`repro serve --socket` end to end through the CLI entry point."""
        import asyncio
        import threading

        from repro.server import ReproClient

        sock = str(tmp_path / "cli.sock")
        out = io.StringIO()
        done = []

        def serve():
            done.append(main(["serve", "--socket", sock, "--no-datasets"], out=out))

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()

        async def drive():
            for _ in range(200):
                try:
                    return await ReproClient.connect(unix_path=sock)
                except (ConnectionError, FileNotFoundError, OSError):
                    await asyncio.sleep(0.02)
            raise AssertionError("server never came up")

        async def session():
            client = await drive()
            response = await client.request(f"load g {edge_file}")
            assert "loaded 'g' v1" in response[0]
            lines = await client.query("g", k=1, gamma=3)
            assert lines[1].startswith("top-1:")
            assert (await client.request("shutdown")) == ["shutting down"]

        asyncio.run(session())
        thread.join(timeout=15)
        assert not thread.is_alive()
        assert done == [0]
        assert "listening on unix://" in out.getvalue()

    def test_script_rejected_in_network_mode(self, tmp_path):
        script = tmp_path / "s.txt"
        script.write_text("quit\n", encoding="utf-8")
        code, text = run_cli([
            "serve", "--tcp", "0", "--script", str(script), "--no-datasets",
        ])
        assert code == 2
        assert "error: --script" in text

    def test_replication_beyond_shards_fails_cleanly(self):
        code, text = run_cli([
            "serve", "--tcp", "0", "--no-datasets",
            "--shards", "2", "--replicate", "wiki=4",
        ])
        assert code == 2
        assert text.startswith("error: replication")

    def test_server_only_flags_rejected_in_stdio_mode(self):
        code, text = run_cli([
            "serve", "--no-datasets", "--warmstart", "cache.json",
        ])
        assert code == 2
        assert "--warmstart" in text and "network server" in text
        code, text = run_cli(["serve", "--no-datasets", "--shards", "2"])
        assert code == 2
        assert "--shards" in text
