"""CountIC / peel_cvs unit tests (Algorithm 2 / 5)."""

from __future__ import annotations

import pytest

from repro.core.count import construct_cvs, count_communities, peel_cvs
from repro.core.reference import reference_communities, reference_keynodes
from repro.graph.builder import graph_from_arrays
from repro.graph.subgraph import PrefixView
from tests.conftest import random_graph


class TestBasics:
    def test_triangle_gamma2(self, triangle):
        record = construct_cvs(PrefixView.whole(triangle), 2)
        assert record.num_communities == 1
        assert record.keys == [2]  # the min-weight vertex
        assert record.cvs == [2, 1, 0] or set(record.cvs) == {0, 1, 2}

    def test_triangle_gamma3(self, triangle):
        record = construct_cvs(PrefixView.whole(triangle), 3)
        assert record.num_communities == 0
        assert record.cvs == []

    def test_gamma_validation(self, triangle):
        with pytest.raises(ValueError):
            peel_cvs([[1], [0]], 0)

    def test_empty_adjacency(self):
        record = peel_cvs([], 1)
        assert record.num_communities == 0

    def test_two_cliques_two_keynodes(self, two_cliques):
        record = construct_cvs(PrefixView.whole(two_cliques), 3)
        assert record.keys == [7, 3]
        groups = [set(record.group(i)) for i in range(2)]
        assert groups == [{4, 5, 6, 7}, {0, 1, 2, 3}]

    def test_keys_strictly_decreasing_rank(self, fig3):
        record = construct_cvs(PrefixView.whole(fig3), 3)
        assert record.keys == sorted(record.keys, reverse=True)

    def test_cvs_partitioned_by_groups(self, fig3):
        record = construct_cvs(PrefixView.whole(fig3), 3)
        rebuilt = []
        for i in range(len(record.keys)):
            rebuilt.extend(record.group(i))
        assert rebuilt == record.cvs

    def test_cvs_has_no_duplicates(self, fig3):
        record = construct_cvs(PrefixView.whole(fig3), 3)
        assert len(set(record.cvs)) == len(record.cvs)


class TestAgainstReference:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("gamma", [1, 2, 3])
    def test_count_matches_reference(self, seed, gamma):
        g = random_graph(16, 0.25, seed, weights="shuffled")
        expected = len(reference_communities(g, gamma))
        assert count_communities(PrefixView.whole(g), gamma) == expected

    @pytest.mark.parametrize("seed", range(8))
    def test_keynodes_match_reference(self, seed):
        g = random_graph(16, 0.3, seed, weights="shuffled")
        record = construct_cvs(PrefixView.whole(g), 2)
        assert sorted(record.keys) == reference_keynodes(g, 2)

    @pytest.mark.parametrize("gamma", [1, 2, 3, 4])
    def test_count_monotone_in_prefix(self, gamma):
        """Lemma 3.1: the number of communities grows as tau decreases."""
        g = random_graph(20, 0.3, 77, weights="shuffled")
        previous = 0
        for p in range(0, 21, 4):
            count = count_communities(PrefixView(g, p), gamma)
            assert count >= previous
            previous = count

    @pytest.mark.parametrize("gamma", [1, 2, 3, 4, 5])
    def test_count_antitone_in_gamma(self, gamma):
        """Tighter cohesiveness can only reduce the community count."""
        g = random_graph(20, 0.35, 88, weights="shuffled")
        view = PrefixView.whole(g)
        assert count_communities(view, gamma) >= count_communities(
            view, gamma + 1
        )


class TestStopRank:
    def test_stop_rank_zero_is_full_peel(self, fig3):
        full = construct_cvs(PrefixView.whole(fig3), 3)
        stopped = construct_cvs(PrefixView.whole(fig3), 3, stop_rank=0)
        assert full.keys == stopped.keys

    def test_suffix_property_random(self):
        """keys/cvs of a smaller prefix is a suffix of the larger one's,
        and stop_rank computes exactly the complement (Section 4)."""
        g = random_graph(24, 0.3, 5, weights="shuffled")
        for gamma in (2, 3):
            for p_small in (8, 12, 16):
                small = construct_cvs(PrefixView(g, p_small), gamma)
                large = construct_cvs(PrefixView(g, 24), gamma)
                delta = construct_cvs(
                    PrefixView(g, 24), gamma, stop_rank=p_small
                )
                assert delta.keys + small.keys == large.keys
                assert delta.cvs + small.cvs == large.cvs

    def test_stop_rank_beyond_all_keys(self, fig3):
        record = construct_cvs(
            PrefixView.whole(fig3), 3, stop_rank=fig3.num_vertices
        )
        assert record.keys == []


class TestRecordAccessors:
    def test_group_bounds(self, fig3):
        record = construct_cvs(PrefixView.whole(fig3), 3)
        for i in range(len(record.keys)):
            start, stop = record.group_bounds(i)
            assert tuple(record.cvs[start:stop]) == record.group(i)

    def test_group_is_cached_tuple(self, fig3):
        record = construct_cvs(PrefixView.whole(fig3), 3)
        first = record.group(0)
        assert isinstance(first, tuple)
        # Groups are immutable once peeled: repeat calls must not copy.
        assert record.group(0) is first

    def test_nc_requires_tracking(self, fig3):
        record = construct_cvs(PrefixView.whole(fig3), 3)
        with pytest.raises(ValueError):
            _ = record.num_noncontainment
