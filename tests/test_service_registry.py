"""GraphRegistry: lazy builds, versioning, and thread safety."""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import UnknownGraphError
from repro.graph.builder import graph_from_arrays
from repro.graph.io import write_edge_list, write_weights
from repro.service import GraphRegistry
from repro.workloads import datasets


def tiny_graph():
    return graph_from_arrays(
        4, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]
    )


@pytest.fixture()
def registry():
    return GraphRegistry(preload_datasets=False)


class TestRegistration:
    def test_preloads_datasets_by_default(self):
        registry = GraphRegistry()
        assert "email" in registry
        assert "twitter" in registry
        assert not registry.is_loaded("email")

    def test_unknown_graph_raises(self, registry):
        with pytest.raises(UnknownGraphError):
            registry.get("nope")

    def test_duplicate_registration_requires_replace(self, registry):
        registry.register("g", tiny_graph)
        with pytest.raises(ValueError):
            registry.register("g", tiny_graph)
        registry.register("g", tiny_graph, replace=True)  # no raise

    def test_register_edge_list(self, registry, tmp_path):
        edges = tmp_path / "g.txt"
        weights = tmp_path / "w.txt"
        write_edge_list(edges, [(0, 1), (0, 2), (1, 2)])
        write_weights(weights, {0: 3.0, 1: 2.0, 2: 1.0})
        registry.register_edge_list("file-graph", str(edges), str(weights))
        handle = registry.get("file-graph")
        assert handle.num_vertices == 3
        assert handle.num_edges == 3

    def test_unregister(self, registry):
        registry.register("g", tiny_graph)
        registry.unregister("g")
        assert "g" not in registry
        with pytest.raises(UnknownGraphError):
            registry.unregister("g")


class TestLifecycle:
    def test_lazy_build_happens_once(self, registry):
        builds = []
        registry.register("g", lambda: builds.append(1) or tiny_graph())
        assert registry.version("g") == 0
        h1 = registry.get("g")
        h2 = registry.get("g")
        assert len(builds) == 1
        assert h1.graph is h2.graph
        assert h1.version == h2.version == 1
        assert registry.builds == 1

    def test_reload_bumps_version_and_rebuilds(self, registry):
        registry.register("g", tiny_graph)
        h1 = registry.get("g")
        h2 = registry.reload("g")
        assert h2.version == h1.version + 1
        assert h2.graph is not h1.graph
        # Old handle still pins the old graph object (no mutation).
        assert h1.graph.num_vertices == 4

    def test_evict_then_get_rebuilds_with_new_version(self, registry):
        registry.register("g", tiny_graph)
        v1 = registry.get("g").version
        registry.evict("g")
        assert not registry.is_loaded("g")
        assert registry.get("g").version == v1 + 1

    def test_describe_reports_load_state(self, registry):
        registry.register("g", tiny_graph, description="a test graph")
        (row,) = registry.describe()
        assert row["loaded"] is False
        registry.get("g")
        (row,) = registry.describe()
        assert row["loaded"] is True
        assert row["vertices"] == 4


class TestConcurrency:
    def test_concurrent_get_builds_once(self, registry):
        builds = []
        gate = threading.Barrier(8)

        def loader():
            builds.append(1)
            return tiny_graph()

        registry.register("g", loader)

        def hammer():
            gate.wait()
            return registry.get("g")

        with ThreadPoolExecutor(max_workers=8) as pool:
            handles = list(pool.map(lambda _: hammer(), range(8)))
        assert len(builds) == 1
        assert all(h.graph is handles[0].graph for h in handles)

    def test_concurrent_distinct_graphs(self, registry):
        for i in range(4):
            registry.register(f"g{i}", tiny_graph)
        with ThreadPoolExecutor(max_workers=4) as pool:
            handles = list(pool.map(registry.get, [f"g{i}" for i in range(4)]))
        assert sorted(h.name for h in handles) == [f"g{i}" for i in range(4)]


class TestDatasetCacheThreadSafety:
    """The satellite: workloads.datasets must survive concurrent use."""

    def test_concurrent_load_same_dataset_builds_once(self):
        datasets.clear_cache()
        gate = threading.Barrier(6)

        def load():
            gate.wait()
            return datasets.load_dataset("email")

        with ThreadPoolExecutor(max_workers=6) as pool:
            graphs = list(pool.map(lambda _: load(), range(6)))
        assert all(g is graphs[0] for g in graphs)

    def test_concurrent_load_and_clear_does_not_corrupt(self):
        datasets.clear_cache()
        stop = threading.Event()
        errors = []

        def loader():
            try:
                while not stop.is_set():
                    g = datasets.load_dataset("email")
                    assert g.num_vertices == 2_000
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def clearer():
            try:
                for _ in range(5):
                    datasets.clear_cache()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=loader) for _ in range(3)]
        threads.append(threading.Thread(target=clearer))
        for t in threads:
            t.start()
        threads[-1].join()
        stop.set()
        for t in threads[:-1]:
            t.join()
        assert errors == []
