"""Shared-memory CSR segments: round-trips, identity, and cleanup.

The cluster tier's correctness contract is *byte identity*: a community
stream computed by a worker over a shared-memory-attached (or pickled)
graph must equal — view for view, field for field — the stream the
in-process engine computes over the original graph.  These tests drive
the same seeded graphs through all three execution paths and compare.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.api.spec import QuerySpec
from repro.cluster import (
    ClusterPool,
    SegmentStore,
    attach_graph,
    close_attachment,
    publish_graph,
    shared_memory_available,
)
from repro.graph.csr import CSRAdjacency
from repro.graph.weighted_graph import WeightedGraph
from repro.service.cache import ResultCache
from repro.service.engine import QueryEngine
from repro.service.registry import GraphHandle, GraphRegistry
from repro.workloads.generators import chung_lu, build_weighted_graph

from tests.conftest import random_graph

needs_shm = pytest.mark.skipif(
    not shared_memory_available(), reason="no usable shared memory here"
)

needs_mp = pytest.mark.skipif(
    not ClusterPool.available(), reason="multiprocessing unavailable"
)


def _shm_entries():
    try:
        return {f for f in os.listdir("/dev/shm") if f.startswith("repro-csr")}
    except FileNotFoundError:  # pragma: no cover - non-tmpfs platform
        return set()


def _seeded_graph(seed: int) -> WeightedGraph:
    n, edges = chung_lu(220, avg_degree=7.0, seed=seed)
    return build_weighted_graph(n, edges, weights="degree", seed=seed)


def _registry_with(graph: WeightedGraph, name: str = "g") -> GraphRegistry:
    registry = GraphRegistry(preload_datasets=False)
    registry.register(name, lambda: graph)
    return registry


# ----------------------------------------------------------------------
# publish / attach round trip
# ----------------------------------------------------------------------
@needs_shm
def test_publish_attach_round_trip_is_byte_identical():
    graph = _seeded_graph(1)
    handle = GraphHandle("g", 1, graph)
    segment, shm = publish_graph(handle)
    try:
        attached, attached_shm = attach_graph(segment)
        try:
            assert attached.num_vertices == graph.num_vertices
            assert attached.num_edges == graph.num_edges
            csr, acsr = graph.csr(), attached.csr()
            assert bytes(memoryview(csr.up_targets)) == bytes(
                memoryview(acsr.up_targets)
            )
            assert bytes(memoryview(csr.down_offsets)) == bytes(
                memoryview(acsr.down_offsets)
            )
            for u in range(graph.num_vertices):
                assert graph.neighbors_up(u) == attached.neighbors_up(u)
                assert graph.neighbors_down(u) == attached.neighbors_down(u)
                assert graph.weight(u) == attached.weight(u)
                assert graph.label(u) == attached.label(u)
        finally:
            # The attached graph's CSR windows pin the mapping; the
            # tolerant close is the supported way to let go of it.
            close_attachment(attached_shm)
    finally:
        shm.close()
        shm.unlink()


@needs_shm
def test_segment_handle_is_small_and_picklable():
    graph = _seeded_graph(2)
    segment, shm = publish_graph(GraphHandle("g", 3, graph))
    try:
        blob = pickle.dumps(segment)
        # The handle must never smuggle the adjacency: it describes it.
        assert len(blob) < 4096
        clone = pickle.loads(blob)
        assert clone.shm_name == segment.shm_name
        assert clone.version == 3
        assert clone.nbytes == segment.nbytes
    finally:
        shm.close()
        shm.unlink()


@needs_shm
def test_identity_labels_are_elided_from_the_handle():
    graph = _seeded_graph(3)  # generator graphs: labels are 0..n-1 ranks?
    segment, shm = publish_graph(GraphHandle("g", 1, graph))
    try:
        labels = [graph.label(r) for r in range(graph.num_vertices)]
        if labels == list(range(graph.num_vertices)):
            assert segment.labels is None
        else:
            assert list(segment.labels) == labels
    finally:
        shm.close()
        shm.unlink()


@needs_shm
def test_segment_store_refcounts_and_unlinks():
    graph = _seeded_graph(4)
    handle = GraphHandle("g", 1, graph)
    store = SegmentStore()
    before = _shm_entries()
    first = store.acquire(handle)
    second = store.acquire(handle)
    assert first.shm_name == second.shm_name  # publish-once
    assert len(store) == 1
    assert not store.release("g", 1)  # one reference remains
    assert _shm_entries() - before  # still published
    assert store.release("g", 1)  # last reference: unlinked
    assert _shm_entries() == before


@needs_shm
def test_release_all_is_the_shutdown_backstop():
    store = SegmentStore()
    before = _shm_entries()
    store.acquire(GraphHandle("a", 1, _seeded_graph(5)))
    store.acquire(GraphHandle("b", 1, _seeded_graph(6)))
    assert len(_shm_entries() - before) == 2
    assert store.release_all() == 2
    assert _shm_entries() == before
    assert len(store) == 0


# ----------------------------------------------------------------------
# byte-identical community streams across execution paths
# ----------------------------------------------------------------------
def _stream_oracle(graph, gamma, k, kernel=None):
    registry = _registry_with(graph)
    engine = QueryEngine(registry, cache=ResultCache(8))
    return engine.execute(
        QuerySpec(graph="g", gamma=gamma, k=k, kernel=kernel)
    )


@needs_mp
@pytest.mark.parametrize("use_shm", [True, False], ids=["shm", "pickle"])
def test_worker_streams_match_in_process_over_seeded_graphs(use_shm):
    if use_shm and not shared_memory_available():
        pytest.skip("no usable shared memory here")
    for seed in (11, 12, 13):
        graph = _seeded_graph(seed)
        gamma = 3 + seed % 3
        oracle = _stream_oracle(graph, gamma, k=12)
        registry = _registry_with(graph)
        cache = ResultCache(8)
        engine = QueryEngine(registry, cache=cache)
        pool = ClusterPool(
            1, registry, cache=cache, use_shared_memory=use_shm
        )
        try:
            result = pool.execute(
                engine, QuerySpec(graph="g", gamma=gamma, k=12)
            )
        finally:
            pool.shutdown()
        assert result.worker == "worker:0"
        assert result.communities == oracle.communities
        assert result.complete == oracle.complete
        assert [v.to_dict() for v in result.communities] == [
            v.to_dict() for v in oracle.communities
        ]


@needs_mp
def test_progressive_extend_is_identical_across_backends():
    graph = _seeded_graph(21)
    gamma = 3
    # In-process: cold k=4, then extend the same cursor to k=10.
    registry = _registry_with(graph)
    engine = QueryEngine(registry, cache=ResultCache(8))
    engine.execute(QuerySpec(graph="g", gamma=gamma, k=4))
    inproc = engine.execute(QuerySpec(graph="g", gamma=gamma, k=10))
    assert inproc.source == "extended"

    streams = {}
    for use_shm in (True, False):
        if use_shm and not shared_memory_available():
            continue
        reg = _registry_with(graph)
        cache = ResultCache(8)
        eng = QueryEngine(reg, cache=cache)
        pool = ClusterPool(1, reg, cache=cache, use_shared_memory=use_shm)
        try:
            pool.execute(eng, QuerySpec(graph="g", gamma=gamma, k=4))
            extended = pool.execute(
                eng, QuerySpec(graph="g", gamma=gamma, k=10)
            )
        finally:
            pool.shutdown()
        assert extended.source == "extended"  # worker cursor resumed
        assert extended.worker == "worker:0"
        streams[use_shm] = extended.communities
    for communities in streams.values():
        assert communities == inproc.communities


@needs_mp
def test_random_graph_noncontainment_and_static_paths_match():
    graph = random_graph(60, 0.12, seed=9, weights="shuffled")
    registry = _registry_with(graph)
    cache = ResultCache(8)
    engine = QueryEngine(registry, cache=cache)
    pool = ClusterPool(1, registry, cache=cache)
    try:
        for spec in (
            QuerySpec(graph="g", gamma=2, k=6, containment=False),
            QuerySpec(graph="g", gamma=2, k=6, algorithm="onlineall"),
            QuerySpec(graph="g", gamma=2, k=6, algorithm="truss"),
        ):
            oracle = QueryEngine(
                _registry_with(graph), cache=ResultCache(8)
            ).execute(spec)
            result = pool.execute(engine, spec)
            assert result.communities == oracle.communities, spec
    finally:
        pool.shutdown()


# ----------------------------------------------------------------------
# cleanup: no leaked /dev/shm entries
# ----------------------------------------------------------------------
@needs_mp
@needs_shm
def test_pool_shutdown_leaves_no_shm_entries():
    before = _shm_entries()
    graph = _seeded_graph(31)
    registry = _registry_with(graph)
    cache = ResultCache(8)
    engine = QueryEngine(registry, cache=cache)
    pool = ClusterPool(2, registry, cache=cache)
    try:
        pool.execute(engine, QuerySpec(graph="g", gamma=3, k=5))
        assert _shm_entries() - before  # a segment is live mid-flight
    finally:
        pool.shutdown()
    assert _shm_entries() == before


@needs_mp
@needs_shm
def test_worker_death_does_not_unlink_the_segment():
    graph = _seeded_graph(32)
    registry = _registry_with(graph)
    cache = ResultCache(8)
    engine = QueryEngine(registry, cache=cache)
    pool = ClusterPool(1, registry, cache=cache)
    try:
        pool.execute(engine, QuerySpec(graph="g", gamma=3, k=5))
        live = _shm_entries()
        worker = pool._workers[0]
        worker.process.kill()
        worker.process.join()
        # The dead worker's exit must not take the parent's segment
        # with it (the pre-3.13 resource-tracker trap).
        assert _shm_entries() == live
        # And the restarted worker serves the family on, re-seeded.
        result = pool.execute(engine, QuerySpec(graph="g", gamma=3, k=9))
        assert result.source in ("extended", "cache", "cold")
        assert worker.restarts == 1
    finally:
        pool.shutdown()
