"""PageRank tests: invariants plus networkx cross-check."""

from __future__ import annotations

import math

import pytest

from repro.graph.pagerank import pagerank_from_edges, pagerank_weights
from tests.conftest import random_graph


class TestInvariants:
    def test_sums_to_one(self):
        scores = pagerank_from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        assert math.isclose(sum(scores), 1.0, rel_tol=1e-9)

    def test_uniform_on_cycle(self):
        n = 6
        edges = [(i, (i + 1) % n) for i in range(n)]
        scores = pagerank_from_edges(n, edges)
        assert max(scores) - min(scores) < 1e-9

    def test_star_center_wins(self):
        scores = pagerank_from_edges(6, [(0, i) for i in range(1, 6)])
        assert scores[0] > max(scores[1:]) * 2

    def test_empty_edge_list(self):
        scores = pagerank_from_edges(4, [])
        assert all(math.isclose(s, 0.25) for s in scores)

    def test_zero_vertices(self):
        assert len(pagerank_from_edges(0, [])) == 0

    def test_pure_python_fallback_matches(self, monkeypatch):
        """The stdlib power iteration agrees with the numpy path."""
        from repro.graph import pagerank as pr

        if pr.np is None:
            pytest.skip("numpy unavailable: the fallback IS the main path")
        edges = [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (3, 4)]
        vectorised = list(pagerank_from_edges(6, edges))
        monkeypatch.setattr(pr, "np", None)
        pure = pagerank_from_edges(6, edges)
        assert isinstance(pure, list)
        for a, b in zip(pure, vectorised):
            assert math.isclose(a, b, abs_tol=1e-9)

    def test_isolated_vertex_gets_teleport_mass(self):
        scores = pagerank_from_edges(3, [(0, 1)])
        assert scores[2] > 0

    def test_bad_damping(self):
        with pytest.raises(ValueError):
            pagerank_from_edges(3, [(0, 1)], damping=1.0)
        with pytest.raises(ValueError):
            pagerank_from_edges(3, [(0, 1)], damping=0.0)


class TestAgainstNetworkx:
    def test_matches_networkx(self):
        nx = pytest.importorskip("networkx")
        g = random_graph(30, 0.1, 21)
        edges = list(g.iter_edges())
        scores = pagerank_from_edges(30, edges)
        ng = nx.Graph()
        ng.add_nodes_from(range(30))
        ng.add_edges_from(edges)
        expected = nx.pagerank(ng, alpha=0.85, tol=1e-12, max_iter=500)
        for r in range(30):
            assert math.isclose(scores[r], expected[r], abs_tol=1e-6)


class TestWeightAssignment:
    def test_distinct(self):
        n = 8
        edges = [(i, (i + 1) % n) for i in range(n)]  # symmetric cycle
        weights = pagerank_weights(n, edges)
        assert len(set(weights)) == n

    def test_order_preserved(self):
        weights = pagerank_weights(6, [(0, i) for i in range(1, 6)])
        assert weights[0] == max(weights)
