"""Wire-protocol compatibility: pre-PR-4 clients must not notice PR 4.

Two layers of guarantee:

* **record/replay fixtures** — request lines exactly as an old client
  sends them, with the response block they used to receive (timing
  fields wildcarded), replayed over both the TCP and the unix-socket
  transport.  The graph is deterministic, so everything except
  ``elapsed_ms`` must match byte for byte.
* **codec tolerance** — ``QuerySpec.from_wire`` accepts the legacy
  (unversioned) JSON payload shape and the versioned schema, and the
  versioned encoding is byte-stable through a decode/encode round trip.
"""

from __future__ import annotations

import asyncio
import json
import re

import pytest

from repro.api import QuerySpec
from repro.graph.builder import graph_from_arrays
from repro.server import ReproClient, ReproServer
from repro.service import GraphRegistry


def two_k4s():
    """Two K4s bridged weakly — 2 deterministic gamma=3 communities."""
    edges = [
        (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
        (4, 5), (4, 6), (4, 7), (5, 6), (5, 7), (6, 7),
        (3, 4),
    ]
    return graph_from_arrays(8, edges)


#: Recorded exchanges: (request line, expected response lines).  The
#: ``<MS>`` placeholder wildcards the elapsed-time field; everything
#: else must match byte for byte.  These were captured from the
#: pre-QuerySpec server and MUST NOT be regenerated from current code —
#: they are the compatibility contract.
LEGACY_EXCHANGES = [
    (
        "query k4s k=2 gamma=3",
        [
            "localsearch-p[cold]: 2 communities (k=2, gamma=3) in <MS> ms",
            "top-1: influence=5 keynode=3 size=4",
            "top-2: influence=1 keynode=7 size=8",
        ],
    ),
    (
        "query k4s k=1 gamma=3 members",
        [
            "localsearch-p[cache]: 1 communities (k=1, gamma=3) in <MS> ms",
            "top-1: influence=5 keynode=3 size=4",
            "       members: 0, 1, 2, 3",
        ],
    ),
    (
        "query k4s k=2 gamma=3 algorithm=backward",
        [
            "backward[cold]: 2 communities (k=2, gamma=3) in <MS> ms",
            "top-1: influence=5 keynode=3 size=4",
            "top-2: influence=1 keynode=7 size=8",
        ],
    ),
    (
        "query nope k=1",
        [
            "error: graph 'nope' is not registered; registered: k4s",
        ],
    ),
    (
        "query k4s k=2 wat=1",
        [
            "error: unknown query argument(s): wat",
        ],
    ),
]

#: The pre-PR-4 single-line JSON response for ``query ... json`` with
#: ``elapsed_ms`` wildcarded: the structured mode's key set and value
#: encoding must survive the QuerySpec refactor unchanged.
LEGACY_JSON_REQUEST = "query k4s k=2 gamma=3 json"
LEGACY_JSON_RESPONSE = {
    "algorithm": "localsearch-p",
    "communities": [
        {"influence": 5.0, "keynode": 3, "size": 4},
        {"influence": 1.0, "keynode": 7, "size": 8},
    ],
    "complete": False,
    "delta": 2.0,
    "gamma": 3,
    "graph": "k4s",
    "graph_version": 1,
    "k": 2,
    "source": "cache",
}


def _registry():
    registry = GraphRegistry(preload_datasets=False)
    registry.register("k4s", two_k4s)
    return registry


async def _serve(transport, tmp_path, drive):
    """Start a server on ``transport`` ('tcp'|'unix'), run ``drive(client)``."""
    server = ReproServer(registry=_registry(), shards=1)
    if transport == "tcp":
        await server.start(tcp=("127.0.0.1", 0))
        client = await ReproClient.connect(port=server.tcp_address[1])
    else:
        path = str(tmp_path / "compat.sock")
        await server.start(unix_path=path)
        client = await ReproClient.connect(unix_path=path)
    try:
        await drive(client)
    finally:
        await client.close()
        await server.stop()


def _match(expected, actual):
    """Byte-identical comparison modulo the <MS> timing wildcard."""
    assert len(actual) == len(expected), (expected, actual)
    for want, got in zip(expected, actual):
        if "<MS>" in want:
            pattern = re.escape(want).replace(
                re.escape("<MS>"), r"[0-9]+\.[0-9]{2}"
            )
            assert re.fullmatch(pattern, got), (want, got)
        else:
            assert got == want


@pytest.mark.parametrize("transport", ["tcp", "unix"])
def test_legacy_line_protocol_replay(transport, tmp_path):
    async def drive(client):
        for request, expected in LEGACY_EXCHANGES:
            _match(expected, await client.request(request))

    asyncio.run(_serve(transport, tmp_path, drive))


@pytest.mark.parametrize("transport", ["tcp", "unix"])
def test_legacy_json_mode_replay(transport, tmp_path):
    async def drive(client):
        # Warm the family first, exactly as the recorded session did.
        await client.request("query k4s k=2 gamma=3")
        lines = await client.request(LEGACY_JSON_REQUEST)
        assert len(lines) == 1
        payload = json.loads(lines[0])
        elapsed = payload.pop("elapsed_ms")
        assert isinstance(elapsed, float)
        kernel = payload.pop("kernel")  # provenance value varies by env
        assert kernel in ("python", "array", "numpy")
        assert payload == LEGACY_JSON_RESPONSE

    asyncio.run(_serve(transport, tmp_path, drive))


@pytest.mark.parametrize("transport", ["tcp", "unix"])
def test_versioned_wire_query_over_both_transports(transport, tmp_path):
    """The new request shape: one wire-JSON document after ``query``."""
    spec = QuerySpec(graph="k4s", gamma=3, k=2, mode="json")

    async def drive(client):
        doc = spec.to_wire_dict()
        doc["members"] = True
        lines = await client.request("query " + json.dumps(doc))
        assert len(lines) == 1
        payload = json.loads(lines[0])
        assert payload["graph"] == "k4s"
        assert [c["members"] for c in payload["communities"]] == [
            [0, 1, 2, 3],
            [0, 1, 2, 3, 4, 5, 6, 7],
        ]

    asyncio.run(_serve(transport, tmp_path, drive))


def test_legacy_request_lines_round_trip_through_from_wire():
    """Every recorded *query parameterisation* decodes into a QuerySpec
    whose canonical wire form decodes back to the same spec (the
    request-level round-trip contract of the satellite)."""
    from repro.api import parse_spec_tokens

    for request, _ in LEGACY_EXCHANGES:
        tokens = request.split()[1:]
        try:
            spec, _members = parse_spec_tokens(tokens)
        except Exception:
            continue  # the recorded error cases
        wire = spec.to_wire()
        again = QuerySpec.from_wire(wire)
        assert again == spec
        assert again.to_wire() == wire


def test_legacy_result_payload_decodes_as_spec():
    payload = dict(LEGACY_JSON_RESPONSE)
    spec = QuerySpec.from_wire(payload)
    assert spec == QuerySpec(
        graph="k4s", gamma=3, k=2, algorithm="localsearch-p", delta=2.0
    )
