"""ClusterPool: routing, restarts, warm starts, metrics, and the server.

Complements ``test_cluster_segments.py`` (which proves byte identity of
the streams): these tests exercise the *pool* behaviour — family-affine
sticky routing, health checks and restart-with-reseed, warm-start
snapshots under the process backend, backend selection, the prefer-idle
replica fix on the thread ShardPool, and the new spec-addressed
metrics surface.
"""

from __future__ import annotations

import asyncio
import io
import json

import pytest

from repro.api.spec import QuerySpec
from repro.cluster import ClusterPool
from repro.errors import ClusterWorkerError
from repro.server import ReproClient, ReproServer, ShardPool, create_pool
from repro.server.warmstart import WarmStart
from repro.service.cache import ResultCache
from repro.service.engine import QueryEngine
from repro.service.metrics import ServiceMetrics, family_label
from repro.service.registry import GraphRegistry
from repro.service.sessions import SessionManager
from repro.service.shell import ServiceShell
from repro.workloads.generators import chung_lu, build_weighted_graph

needs_mp = pytest.mark.skipif(
    not ClusterPool.available(), reason="multiprocessing unavailable"
)


def _graph(seed: int = 7):
    n, edges = chung_lu(180, avg_degree=6.0, seed=seed)
    return build_weighted_graph(n, edges, weights="degree", seed=seed)


def _stack(seed: int = 7, cache_size: int = 16):
    registry = GraphRegistry(preload_datasets=False)
    graph = _graph(seed)
    registry.register("g", lambda: graph)
    cache = ResultCache(cache_size)
    metrics = ServiceMetrics()
    engine = QueryEngine(registry, cache=cache, metrics=metrics)
    return registry, cache, metrics, engine


# ----------------------------------------------------------------------
# routing
# ----------------------------------------------------------------------
def test_family_routing_is_sticky_and_deterministic():
    registry, cache, _, _ = _stack()
    pool = ClusterPool(4, registry, cache=cache)
    family_a = QuerySpec(graph="g", gamma=3, k=5).cache_key()
    family_b = QuerySpec(graph="g", gamma=4, k=5).cache_key()
    first = pool.route(family_a)
    assert all(pool.route(family_a) == first for _ in range(10))
    assert pool.route(family_a) == pool.home_worker(family_a)
    # Same k, different gamma: a different family, free to land elsewhere.
    assert pool.route(family_b) == pool.home_worker(family_b)
    pool.shutdown()


def test_replicated_first_placement_prefers_idle_worker():
    registry, cache, _, _ = _stack()
    pool = ClusterPool(4, registry, cache=cache, replication={"g": 3})
    family = QuerySpec(graph="g", gamma=3, k=5).cache_key()
    base = pool.home_worker(family)
    # Make the home candidate look busy before first placement.
    pool._workers[base].depth = 2
    chosen = pool.route(family)
    assert chosen != base
    assert chosen in {(base + i) % 4 for i in range(3)}
    # Sticky even after the load evaporates: the cursor lives there now.
    pool._workers[base].depth = 0
    assert pool.route(family) == chosen
    pool.shutdown()


def test_pool_validates_geometry():
    registry, cache, _, _ = _stack()
    with pytest.raises(ValueError):
        ClusterPool(0, registry)
    pool = ClusterPool(2, registry, cache=cache)
    with pytest.raises(ValueError):
        pool.replicate("g", 3)
    pool.shutdown()
    with pytest.raises(RuntimeError):
        pool.execute(None, QuerySpec(graph="g"))


# ----------------------------------------------------------------------
# execution behaviour
# ----------------------------------------------------------------------
@needs_mp
def test_execute_spec_serves_and_mirrors_into_parent_cache():
    registry, cache, metrics, engine = _stack()
    pool = ClusterPool(1, registry, cache=cache, metrics=metrics)
    try:
        async def run():
            return await pool.execute_spec(
                engine, QuerySpec(graph="g", gamma=3, k=6)
            )

        result = asyncio.run(run())
        assert result.source == "cold"
        assert result.worker == "worker:0"
        assert len(cache.keys()) == 1  # mirrored views landed
        # The mirror makes the repeat a parent-side slice: no dispatch.
        dispatches = pool._workers[0].dispatches
        again = pool.execute(engine, QuerySpec(graph="g", gamma=3, k=4))
        assert again.source == "cache"
        assert again.worker is None  # served in-parent
        assert pool._workers[0].dispatches == dispatches
    finally:
        pool.shutdown()


@needs_mp
def test_worker_errors_flatten_and_keep_the_worker_alive():
    registry, cache, metrics, engine = _stack()
    pool = ClusterPool(1, registry, cache=cache, metrics=metrics)
    try:
        pool.execute(engine, QuerySpec(graph="g", gamma=3, k=3))
        worker = pool._workers[0]
        # A protocol error is answered, flattened, without killing the
        # worker loop (exception objects never cross the pipe).
        with worker.lock:
            worker.conn.send(("no_such_tag",))
            assert worker.conn.poll(5.0)
            reply = worker.conn.recv()
        assert reply[0] == "error"
        assert worker.alive
        # A worker-side query failure surfaces as ClusterWorkerError.
        with worker.lock:
            worker.conn.send(
                ("query", QuerySpec(graph="not-attached", k=2), None)
            )
            assert worker.conn.poll(5.0)
            kind_reply = worker.conn.recv()
        assert kind_reply[0] == "error"
        assert kind_reply[1] == "UnknownGraphError"
        # And the pool still serves after the turbulence.
        result = pool.execute(engine, QuerySpec(graph="g", gamma=3, k=5))
        assert result.communities
    finally:
        pool.shutdown()


@needs_mp
def test_health_check_restarts_dead_workers():
    registry, cache, metrics, engine = _stack()
    pool = ClusterPool(2, registry, cache=cache, metrics=metrics)
    try:
        pool.execute(engine, QuerySpec(graph="g", gamma=3, k=4))
        victim = pool._workers[0]
        victim.process.kill()
        victim.process.join()
        status = pool.health_check()
        assert "worker:0" in status["restarted"]
        assert victim.alive
        assert metrics.worker_restarts == 1
        # The other worker answered the ping with stats.
        assert isinstance(status["worker:1"], dict)
    finally:
        pool.shutdown()


@needs_mp
def test_graph_reload_reattaches_new_version():
    registry, cache, metrics, engine = _stack()
    pool = ClusterPool(1, registry, cache=cache, metrics=metrics)
    try:
        first = pool.execute(engine, QuerySpec(graph="g", gamma=3, k=4))
        assert first.graph_version == 1
        registry.reload("g")
        second = pool.execute(engine, QuerySpec(graph="g", gamma=3, k=4))
        assert second.graph_version == 2
        assert second.source == "cold"  # fresh cursor for the new build
        assert second.communities == first.communities  # same data
        attaches = metrics.snapshot()["cluster"]["segment_attaches"]
        assert sum(attaches.values()) == 2  # one per version
    finally:
        pool.shutdown()


# ----------------------------------------------------------------------
# warm start under the process backend
# ----------------------------------------------------------------------
@needs_mp
def test_warmstart_snapshot_and_restore_work_with_cluster_backend(tmp_path):
    path = str(tmp_path / "warm.json")
    graph = _graph(3)

    def build_stack():
        registry = GraphRegistry(preload_datasets=False)
        registry.register("g", lambda: graph)
        cache = ResultCache(16)
        engine = QueryEngine(registry, cache=cache)
        return registry, cache, engine

    registry, cache, engine = build_stack()
    pool = ClusterPool(1, registry, cache=cache)
    try:
        served = pool.execute(engine, QuerySpec(graph="g", gamma=3, k=6))
        # Worker-computed state reaches the snapshot via the mirror.
        assert WarmStart(path).save(cache, registry) == 1
    finally:
        pool.shutdown()

    registry2, cache2, engine2 = build_stack()
    assert WarmStart(path).load(cache2, registry2) == 1
    pool2 = ClusterPool(1, registry2, cache=cache2)
    try:
        warm = pool2.execute(engine2, QuerySpec(graph="g", gamma=3, k=6))
        assert warm.source == "cache"
        assert warm.worker is None  # restored views: parent-side slice
        assert warm.communities == served.communities
        # Extension dispatches to a worker re-seeded from the snapshot.
        extended = pool2.execute(engine2, QuerySpec(graph="g", gamma=3, k=10))
        assert extended.source == "extended"
        assert extended.worker == "worker:0"
        assert extended.communities[:6] == served.communities
    finally:
        pool2.shutdown()


# ----------------------------------------------------------------------
# backend selection
# ----------------------------------------------------------------------
def test_create_pool_defaults_to_threads():
    pool = create_pool(shards=3)
    assert isinstance(pool, ShardPool)
    assert pool.num_shards == 3
    assert pool.backend == "thread"
    pool.shutdown()


def test_create_pool_promotes_to_processes_on_workers():
    registry = GraphRegistry(preload_datasets=False)
    pool = create_pool(workers=2, registry=registry)
    try:
        if ClusterPool.available():
            assert isinstance(pool, ClusterPool)
            assert pool.backend == "process"
        else:  # pragma: no cover - platform without multiprocessing
            assert isinstance(pool, ShardPool)
        assert pool.num_shards == 2
    finally:
        pool.shutdown()


def test_create_pool_falls_back_to_threads_without_registry():
    # No registry means the cluster tier cannot resolve graphs: threads.
    pool = create_pool(workers=2)
    assert isinstance(pool, ShardPool)
    assert pool.num_shards == 2
    pool.shutdown()


def test_create_pool_rejects_unknown_backend():
    with pytest.raises(ValueError):
        create_pool("fibers")


# ----------------------------------------------------------------------
# ShardPool: prefer-idle replica routing (the replication fix)
# ----------------------------------------------------------------------
def test_replica_routing_steers_around_a_busy_replica():
    metrics = ServiceMetrics()
    pool = ShardPool(4, replication={"hot": 2}, metrics=metrics)
    try:
        base = pool.home_shard("hot")
        twin = (base + 1) % 4
        # Round-robin turn 0 chooses base; make base busy, twin idle.
        pool._depth[base] = 1
        assert pool.route("hot") == twin
        assert metrics.replica_idle_dispatches == 1
        # Both busy: fall back to the round-robin choice (turn 1 = twin).
        pool._depth[twin] = 1
        assert pool.route("hot") in (base, twin)
        assert metrics.replica_idle_dispatches == 1  # no idle to steal
    finally:
        pool.shutdown()


def test_replica_routing_keeps_round_robin_when_all_idle():
    pool = ShardPool(4, replication={"hot": 3})
    try:
        base = pool.home_shard("hot")
        expected = [(base + i) % 4 for i in (0, 1, 2, 0, 1, 2)]
        assert [pool.route("hot") for _ in range(6)] == expected
    finally:
        pool.shutdown()


# ----------------------------------------------------------------------
# spec-addressed metrics + shell exposure
# ----------------------------------------------------------------------
def test_by_family_aggregates_hit_rate_and_percentiles():
    metrics = ServiceMetrics()
    family = QuerySpec(graph="g", gamma=3, k=5, kernel="array").cache_key()
    metrics.observe_query("localsearch-p", 10.0, "cold", family=family)
    metrics.observe_query("localsearch-p", 1.0, "cache", family=family)
    metrics.observe_query("localsearch-p", 2.0, "extended", family=family)
    rows = metrics.by_family()
    label = family_label(family)
    assert label in rows
    row = rows[label]
    assert row["queries"] == 3
    assert row["hit_rate"] == pytest.approx(2 / 3)
    assert row["p50_ms"] == 2.0
    assert row["p95_ms"] == 10.0


def test_by_family_table_is_bounded():
    metrics = ServiceMetrics(max_families=4)
    for gamma in range(1, 11):
        family = QuerySpec(graph="g", gamma=gamma, k=5).cache_key()
        metrics.observe_query("localsearch-p", 1.0, "cold", family=family)
    assert len(metrics.by_family()) == 4  # least-recently-active dropped


def test_shell_metrics_text_and_json_modes():
    registry = GraphRegistry(preload_datasets=False)
    graph = _graph(5)
    registry.register("g", lambda: graph)
    metrics = ServiceMetrics()
    engine = QueryEngine(registry, cache=ResultCache(8), metrics=metrics)
    out = io.StringIO()
    shell = ServiceShell(
        engine, SessionManager(registry, metrics=metrics), out, metrics=metrics
    )
    shell.execute_line("query g gamma=3 k=4")
    shell.execute_line("query g gamma=3 k=4")
    out.seek(0)
    out.truncate(0)
    shell.execute_line("metrics")
    text = out.getvalue()
    assert "family[" in text
    assert "hit_rate=0.500" in text
    assert "backend[thread]: 2" in text
    out.seek(0)
    out.truncate(0)
    shell.execute_line("metrics json")
    snapshot = json.loads(out.getvalue())
    assert snapshot["queries_served"] == 2
    assert snapshot["by_backend"] == {"thread": 2}
    (family_row,) = snapshot["by_family"].values()
    assert family_row["queries"] == 2
    assert family_row["p50_ms"] is not None
    out.seek(0)
    out.truncate(0)
    shell.execute_line("metrics nonsense")
    assert "error" in out.getvalue()


# ----------------------------------------------------------------------
# the server, end to end with worker processes
# ----------------------------------------------------------------------
@needs_mp
def test_server_serves_over_tcp_with_process_workers(tmp_path):
    async def main():
        server = ReproServer(workers=2, preload_datasets=True)
        await server.start(tcp=("127.0.0.1", 0))
        assert server.shards.backend == "process"
        host, port = server.tcp_address
        client = await ReproClient.connect(host, port=port)
        try:
            payload = await client.query("email", k=4, gamma=5, mode="json")
            assert payload["source"] == "cold"
            assert payload["worker"].startswith("worker:")
            extended_payload = await client.query(
                "email", k=9, gamma=5, mode="json"
            )
            assert extended_payload["source"] == "extended"
            assert extended_payload["communities"][:4] == payload["communities"]
            metrics_lines = await client.request("metrics json")
            snapshot = json.loads(metrics_lines[0])
            assert snapshot["by_backend"].get("process", 0) >= 2
            assert snapshot["cluster"]["segment_attaches"]
        finally:
            await client.close()
        await server.stop()

    asyncio.run(main())


@needs_mp
def test_server_coalesces_concurrent_queries_onto_one_worker_pass():
    async def main():
        server = ReproServer(workers=1, batch_window_ms=25.0)
        await server.start(tcp=("127.0.0.1", 0))
        host, port = server.tcp_address

        async def one(k: int):
            client = await ReproClient.connect(host, port=port)
            try:
                lines = await client.query("email", k=k, gamma=5)
                assert not lines[0].startswith("error"), lines
                return lines[0]
            finally:
                await client.close()

        batches_before = server.scheduler.stats.batches
        headers = await asyncio.gather(*(one(2 + i % 6) for i in range(12)))
        passes = server.scheduler.stats.batches - batches_before
        assert passes < 12  # coalesced onto shared worker passes
        assert any("[coalesced]" in h for h in headers)
        await server.stop()

    asyncio.run(main())
