"""SessionManager: progressive batches, TTL eviction, cursor resumption."""

from __future__ import annotations

import pytest

from repro.core.progressive import LocalSearchP
from repro.errors import UnknownSessionError
from repro.graph.builder import graph_from_arrays
from repro.service import GraphRegistry, ServiceMetrics, SessionManager


def layered_cliques(num_cliques=5):
    edges = []
    for c in range(num_cliques):
        base = 4 * c
        for i in range(4):
            for j in range(i + 1, 4):
                edges.append((base + i, base + j))
    return graph_from_arrays(4 * num_cliques, edges)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture()
def registry():
    registry = GraphRegistry(preload_datasets=False)
    registry.register("cliques", layered_cliques)
    return registry


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def manager(registry, clock):
    return SessionManager(registry, ttl_seconds=60.0, clock=clock)


class TestProgressiveCursor:
    """The resumable stream handle added to core.progressive."""

    def test_take_is_idempotent_and_resumes(self, registry):
        graph = registry.get("cliques").graph
        cursor = LocalSearchP(graph, gamma=3).cursor()
        first_two = cursor.take(2)
        assert cursor.materialized == 2
        assert cursor.take(2) == first_two  # pure slice, no recompute
        four = cursor.take(4)
        assert four[:2] == first_two
        assert cursor.materialized >= 4

    def test_matches_plain_stream(self, registry):
        graph = registry.get("cliques").graph
        cursor = LocalSearchP(graph, gamma=3).cursor()
        stepwise = [cursor.take(i)[-1] for i in range(1, 6)]
        plain = list(LocalSearchP(graph, gamma=3).run(k=5).communities)
        assert [c.keynode for c in stepwise] == [c.keynode for c in plain]

    def test_exhaustion(self, registry):
        graph = registry.get("cliques").graph
        cursor = LocalSearchP(graph, gamma=3).cursor()
        everything = cursor.take(100)
        assert cursor.exhausted
        assert len(everything) == 5
        assert cursor.take(200) == everything


class TestSessions:
    def test_batches_are_disjoint_and_ordered(self, manager):
        session = manager.create("cliques", gamma=3)
        batch1, done1 = manager.next(session.session_id, 2)
        batch2, done2 = manager.next(session.session_id, 2)
        assert not done1 and not done2
        assert len(batch1) == len(batch2) == 2
        influences = [v.influence for v in batch1 + batch2]
        assert influences == sorted(influences, reverse=True)
        assert len({v.keynode for v in batch1 + batch2}) == 4

    def test_exhaustion_reported(self, manager):
        session = manager.create("cliques", gamma=3)
        views, done = manager.next(session.session_id, 50)
        assert len(views) == 5
        assert done
        more, still_done = manager.next(session.session_id, 5)
        assert more == [] and still_done

    def test_close_and_unknown(self, manager):
        session = manager.create("cliques", gamma=3)
        manager.close(session.session_id)
        with pytest.raises(UnknownSessionError):
            manager.next(session.session_id)
        with pytest.raises(UnknownSessionError):
            manager.close(session.session_id)

    def test_session_ids_are_unique(self, manager):
        ids = {manager.create("cliques", gamma=3).session_id for _ in range(5)}
        assert len(ids) == 5


class TestTTL:
    def test_idle_session_expires(self, manager, clock, registry):
        metrics = ServiceMetrics()
        manager.metrics = metrics
        session = manager.create("cliques", gamma=3)
        clock.advance(61.0)
        assert manager.active() == []
        with pytest.raises(UnknownSessionError):
            manager.next(session.session_id)
        assert metrics.snapshot()["sessions_expired"] == 1

    def test_activity_refreshes_ttl(self, manager, clock):
        session = manager.create("cliques", gamma=3)
        for _ in range(4):
            clock.advance(45.0)
            manager.next(session.session_id, 1)
        assert session.session_id in manager

    def test_touch_refreshes_without_advancing(self, manager, clock):
        session = manager.create("cliques", gamma=3)
        clock.advance(45.0)
        manager.touch(session.session_id)
        clock.advance(45.0)
        assert session.session_id in manager
        views, _ = manager.next(session.session_id, 1)
        assert views[0].influence == max(
            v.influence
            for v in views
        )
        assert session.delivered == 1

    def test_expiry_only_counts_idle_sessions(self, manager, clock):
        s1 = manager.create("cliques", gamma=3)
        clock.advance(40.0)
        s2 = manager.create("cliques", gamma=3)
        clock.advance(30.0)  # s1 idle 70s, s2 idle 30s
        live = [row["session_id"] for row in manager.active()]
        assert live == [s2.session_id]
        assert s1.session_id not in manager
