"""repro.obs.export — Prometheus rendering, HTTP endpoints, repro trace."""

from __future__ import annotations

import io
import json
import urllib.error
import urllib.request

import pytest

from repro.api.spec import FamilyKey
from repro.cli import main
from repro.obs.export import MetricsServer, render_prometheus
from repro.obs.history import SLO, MetricsHistory
from repro.obs.trace import TraceStore, Tracer
from repro.service.metrics import ServiceMetrics


def family(graph="g", gamma=2):
    return FamilyKey(
        graph=graph, gamma=gamma, algorithm="localsearch-p",
        delta=2.0, kernel="fastpeel",
    )


def populated_metrics() -> ServiceMetrics:
    metrics = ServiceMetrics()
    for elapsed, source in ((4.0, "cold"), (1.0, "cache"), (2.0, "cache")):
        metrics.observe_query(
            "localsearch-p", elapsed, source,
            kernel="fastpeel", family=family(),
        )
    metrics.observe_error(kind="QueryParameterError")
    metrics.observe_batch(2)
    metrics.observe_queue_depth(3)
    return metrics


class TestRenderPrometheus:
    def test_core_series(self):
        text = render_prometheus(populated_metrics().snapshot())
        assert "repro_queries_served_total 3" in text
        assert 'repro_queries_by_source_total{source="cache"} 2' in text
        assert (
            'repro_errors_by_kind_total{kind="QueryParameterError"} 1'
            in text
        )
        assert "repro_server_queue_depth 3" in text
        assert "repro_server_coalesce_rate" in text

    def test_family_quantiles(self):
        text = render_prometheus(populated_metrics().snapshot())
        assert 'quantile="0.5"' in text
        assert 'quantile="0.95"' in text
        assert "repro_family_latency_ms" in text
        assert "repro_family_queries_total" in text

    def test_label_escaping(self):
        metrics = ServiceMetrics()
        metrics.observe_error(kind='Weird"Kind\nName\\x')
        text = render_prometheus(metrics.snapshot())
        assert r'kind="Weird\"Kind\nName\\x"' in text

    def test_trace_counters(self):
        tracer = Tracer(sample=1.0, slow_ms=0.0)
        tracer.end(tracer.maybe_start("query"))
        text = render_prometheus(
            ServiceMetrics().snapshot(), tracer.store
        )
        assert "repro_traces_recorded_total 1" in text
        assert "repro_traces_slow_total 1" in text

    def test_help_and_type_headers_once(self):
        text = render_prometheus(populated_metrics().snapshot())
        assert text.count("# TYPE repro_queries_served_total counter") == 1


class TestSloRender:
    """``repro_slo_*`` series from a history with a configured SLO."""

    @staticmethod
    def _history(metrics, slo, mutate=None):
        clock = {"now": 1000.0}
        history = MetricsHistory(
            metrics, slo=slo, clock=lambda: clock["now"]
        )
        history.sample()
        if mutate is not None:
            mutate()
        clock["now"] += 1.0
        history.sample()
        return history

    def test_slo_block_renders_target_value_and_ok(self):
        metrics = populated_metrics()
        history = self._history(
            metrics, SLO(err_rate=0.5, p95_ms=1000.0)
        )
        text = render_prometheus(metrics.snapshot(), history=history)
        assert 'repro_slo_target{objective="err_rate"} 0.5' in text
        assert 'repro_slo_target{objective="p95_ms"} 1000.0' in text
        assert 'repro_slo_ok{objective="err_rate"} 1' in text
        assert "repro_slo_breaches_total 0" in text

    def test_breach_flips_ok_and_counts(self):
        metrics = populated_metrics()

        def fail_everything():
            for _ in range(5):
                metrics.observe_error(kind="Boom")

        history = self._history(
            metrics, SLO(err_rate=0.1), mutate=fail_everything
        )
        text = render_prometheus(metrics.snapshot(), history=history)
        assert 'repro_slo_ok{objective="err_rate"} 0' in text
        assert "repro_slo_breaches_total 1" in text

    def test_no_slo_no_block(self):
        metrics = populated_metrics()
        # A history without an SLO contributes nothing, same as none.
        history = MetricsHistory(metrics, clock=lambda: 0.0)
        for text in (
            render_prometheus(metrics.snapshot()),
            render_prometheus(metrics.snapshot(), history=history),
        ):
            assert "repro_slo_" not in text


@pytest.fixture()
def exporter():
    tracer = Tracer(sample=1.0)
    root = tracer.maybe_start("transport")
    child = tracer.start_span("engine", root)
    tracer.end(child)
    trace = tracer.end(root, source="cold")
    server = MetricsServer(populated_metrics(), trace_store=tracer.store)
    host, port = server.start()
    try:
        yield f"http://{host}:{port}", trace
    finally:
        server.stop()


def _get(url: str):
    with urllib.request.urlopen(url, timeout=10.0) as response:
        return response.read().decode("utf-8")


class TestMetricsServer:
    def test_metrics_text(self, exporter):
        base, _ = exporter
        text = _get(base + "/metrics")
        assert "repro_queries_served_total 3" in text
        assert "repro_traces_recorded_total 1" in text

    def test_metrics_json(self, exporter):
        base, _ = exporter
        doc = json.loads(_get(base + "/metrics.json"))
        assert doc["queries_served"] == 3
        assert doc["traces"]["traces_recorded"] == 1

    def test_healthz(self, exporter):
        base, _ = exporter
        assert _get(base + "/healthz").strip() == "ok"

    def test_traces_listing_and_by_id(self, exporter):
        base, trace = exporter
        listing = json.loads(_get(base + "/traces?limit=5"))["traces"]
        assert listing[0]["trace_id"] == trace["trace_id"]
        doc = json.loads(_get(base + f"/traces/{trace['trace_id']}"))
        assert {s["name"] for s in doc["spans"]} == {"transport", "engine"}

    def test_unknown_trace_404(self, exporter):
        base, _ = exporter
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(base + "/traces/nope")
        assert err.value.code == 404

    def test_unknown_path_404(self, exporter):
        base, _ = exporter
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(base + "/bogus")
        assert err.value.code == 404

    def test_start_and_stop_idempotent(self):
        server = MetricsServer(ServiceMetrics())
        address = server.start()
        assert server.start() == address
        server.stop()
        server.stop()


class TestTraceCli:
    def _run(self, argv):
        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    def test_listing_and_render(self, exporter):
        base, trace = exporter
        port = base.rsplit(":", 1)[1]
        code, text = self._run(["trace", "--port", port])
        assert code == 0
        assert trace["trace_id"] in text
        code, text = self._run(
            ["trace", "--port", port, "--id", trace["trace_id"]]
        )
        assert code == 0
        assert "engine" in text

    def test_json_mode(self, exporter):
        base, trace = exporter
        port = base.rsplit(":", 1)[1]
        code, text = self._run(["trace", "--port", port, "--json"])
        assert code == 0
        doc = json.loads(text)
        assert doc["traces"][0]["trace_id"] == trace["trace_id"]

    def test_unknown_id_exits_nonzero(self, exporter):
        base, _ = exporter
        port = base.rsplit(":", 1)[1]
        code, text = self._run(
            ["trace", "--port", port, "--id", "missing"]
        )
        assert code == 1
        assert "no trace" in text

    def test_unreachable_server_exits_nonzero(self):
        code, text = self._run(["trace", "--port", "1"])
        assert code == 1
        assert "cannot reach" in text


class TestMetricsCli:
    """``repro metrics`` — the snapshot/history puller."""

    def _run(self, argv):
        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    def test_snapshot_text(self, exporter):
        base, _ = exporter
        port = base.rsplit(":", 1)[1]
        code, text = self._run(["metrics", "--port", port])
        assert code == 0
        assert "queries_served: 3" in text
        assert "cache_hit_rate:" in text
        assert "traces: recorded=1" in text

    def test_json_mode_dumps_snapshot(self, exporter):
        base, _ = exporter
        port = base.rsplit(":", 1)[1]
        code, text = self._run(["metrics", "--port", port, "--json"])
        assert code == 0
        doc = json.loads(text)
        assert doc["queries_served"] == 3

    def test_history_against_disabled_server(self, exporter):
        base, _ = exporter
        port = base.rsplit(":", 1)[1]
        code, text = self._run(["metrics", "--port", port, "--history"])
        assert code == 1
        assert "history collector disabled" in text

    def test_history_text_renders_points_and_slo(self):
        metrics = populated_metrics()
        clock = {"now": 1000.0}
        history = MetricsHistory(
            metrics, slo=SLO(err_rate=0.5), clock=lambda: clock["now"]
        )
        history.sample()
        metrics.observe_query("localsearch-p", 2.0, "cache")
        clock["now"] += 1.0
        history.sample()
        server = MetricsServer(metrics, history=history)
        _, port = server.start()
        try:
            code, text = self._run(
                ["metrics", "--port", str(port), "--history"]
            )
        finally:
            server.stop()
        assert code == 0
        assert "qps=1.00" in text
        assert "slo[ok]:" in text

    def test_unreachable_server_exits_nonzero(self):
        code, text = self._run(["metrics", "--port", "1"])
        assert code == 1
        assert "cannot reach" in text
