"""Semi-external algorithms: correctness + I/O accounting."""

from __future__ import annotations

import os

import pytest

from repro import top_k_influential_communities
from repro.baselines import local_search_se, online_all_se
from repro.errors import QueryParameterError
from repro.graph.storage import FileEdgeStore, IOCounter, InMemoryEdgeStore
from tests.conftest import random_graph


@pytest.fixture()
def se_graph():
    return random_graph(60, 0.12, 31, weights="shuffled")


@pytest.fixture()
def file_store(tmp_path, se_graph):
    path = tmp_path / "edges.bin"
    return FileEdgeStore.create(path, se_graph, IOCounter(block_edges=16))


def pairs(result):
    return [
        (c.influence, frozenset(c.vertex_ranks)) for c in result.communities
    ]


class TestLocalSearchSE:
    def test_validation(self, se_graph, file_store):
        with pytest.raises(QueryParameterError):
            local_search_se(se_graph, file_store, 0, 2)
        with pytest.raises(QueryParameterError):
            local_search_se(se_graph, file_store, 1, 0)
        with pytest.raises(QueryParameterError):
            local_search_se(se_graph, file_store, 1, 2, delta=1.0)

    @pytest.mark.parametrize("k", [1, 3, 8])
    @pytest.mark.parametrize("gamma", [2, 3])
    def test_matches_in_memory(self, se_graph, tmp_path, k, gamma):
        store = FileEdgeStore.create(
            tmp_path / f"e{k}{gamma}.bin", se_graph, IOCounter()
        )
        se = local_search_se(se_graph, store, k, gamma)
        mem = top_k_influential_communities(se_graph, k, gamma)
        assert pairs(se) == [
            (c.influence, frozenset(c.vertex_ranks))
            for c in mem.communities
        ]

    def test_reads_only_prefix(self, se_graph, file_store):
        result = local_search_se(se_graph, file_store, 2, 2)
        assert result.io.edges_read < se_graph.num_edges
        assert result.io.edges_read == result.io.peak_resident_edges
        assert result.visited_edges == result.io.peak_resident_edges

    def test_sequential_loads_never_reread(self, se_graph, file_store):
        result = local_search_se(se_graph, file_store, 5, 2)
        # Each edge is read exactly once: reads sum to the resident set.
        assert result.io.edges_read == result.io.peak_resident_edges

    def test_in_memory_store_variant(self, se_graph):
        store = InMemoryEdgeStore.from_graph(se_graph)
        result = local_search_se(se_graph, store, 3, 2)
        mem = top_k_influential_communities(se_graph, 3, 2)
        assert pairs(result) == [
            (c.influence, frozenset(c.vertex_ranks))
            for c in mem.communities
        ]


class TestOnlineAllSE:
    def test_validation(self, se_graph, file_store):
        with pytest.raises(QueryParameterError):
            online_all_se(se_graph, file_store, 0, 2)
        with pytest.raises(QueryParameterError):
            online_all_se(se_graph, file_store, 1, 0)

    def test_matches_in_memory(self, se_graph, file_store):
        result = online_all_se(se_graph, file_store, 4, 2)
        mem = top_k_influential_communities(se_graph, 4, 2)
        assert pairs(result) == [
            (c.influence, frozenset(c.vertex_ranks))
            for c in mem.communities
        ]

    def test_scans_whole_file(self, se_graph, file_store):
        result = online_all_se(se_graph, file_store, 2, 2)
        assert result.io.edges_read >= se_graph.num_edges

    def test_memory_budget_spill(self, se_graph, tmp_path):
        m = se_graph.num_edges
        budget = m // 3
        store = FileEdgeStore.create(
            tmp_path / "budget.bin", se_graph, IOCounter()
        )
        result = online_all_se(
            se_graph, store, 2, 2, memory_budget_edges=budget
        )
        assert result.io.peak_resident_edges == budget
        # Spill accounting: strictly more I/O than the plain scan.
        assert result.io.edges_read > m

    def test_unbudgeted_resident_is_whole_graph(self, se_graph, file_store):
        result = online_all_se(se_graph, file_store, 2, 2)
        assert result.io.peak_resident_edges == se_graph.num_edges


class TestSEComparison:
    def test_locality_gap(self, se_graph, tmp_path):
        """LocalSearch-SE must touch far fewer edges than OnlineAll-SE."""
        store_a = FileEdgeStore.create(tmp_path / "a.bin", se_graph)
        store_b = FileEdgeStore.create(tmp_path / "b.bin", se_graph)
        ls = local_search_se(se_graph, store_a, 2, 3)
        oa = online_all_se(se_graph, store_b, 2, 3)
        assert ls.io.edges_read < oa.io.edges_read
        assert ls.visited_edges <= oa.visited_edges
        assert pairs(ls) == pairs(oa)
