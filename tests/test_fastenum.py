"""Differential and reuse tests for the flat-array EnumIC kernels.

The python kernel (:mod:`repro.core.enumerate` over the dict-based
:class:`KeyedDisjointSet`) is the oracle; the ``array`` and ``numpy``
kernels must produce byte-identical community forests — keynode,
influence, own vertices, and children, in the identical order — for
every graph, γ, prefix and ``k``, cold and across warm (scratch- and
state-carrying) progressive rounds, for vertex, non-containment and
truss enumeration, in-process and across cluster worker processes under
both multiprocessing start methods.
"""

import random

import pytest

from repro.api.spec import QuerySpec
from repro.cluster import ClusterPool
from repro.core import fastenum, fastpeel
from repro.core.count import construct_cvs
from repro.core.enumerate import (
    EnumerationState,
    enumerate_progressive,
    enumerate_top_k,
)
from repro.core.fastenum import EnumScratch
from repro.core.fastpeel import PeelScratch, numpy_available
from repro.core.noncontainment import top_k_noncontainment_communities
from repro.core.progressive import LocalSearchP
from repro.core.truss_search import (
    construct_cvs_truss,
    enumerate_truss_top_k,
    top_k_truss_communities,
)
from repro.graph.disjoint_set import KeyedDisjointSet
from repro.graph.subgraph import PrefixView
from repro.service.cache import ResultCache
from repro.service.engine import QueryEngine
from repro.service.registry import GraphRegistry
from repro.workloads.generators import (
    barabasi_albert,
    build_weighted_graph,
    chung_lu,
    erdos_renyi,
    planted_partition,
)

FAST_KERNELS = ("array", "numpy")

needs_mp = pytest.mark.skipif(
    not ClusterPool.available(), reason="multiprocessing unavailable"
)


@pytest.fixture(autouse=True)
def force_numpy_paths(monkeypatch):
    """Tiny test graphs must still exercise the vectorised numpy paths."""
    monkeypatch.setattr(fastpeel, "NUMPY_MIN_P", 0)
    monkeypatch.setattr(fastenum, "ENUM_NUMPY_MIN_GROUP", 0)


def random_graph(seed: int):
    rng = random.Random(seed)
    style = seed % 3
    if style == 0:
        n, edges = erdos_renyi(
            rng.randrange(4, 50), rng.randrange(0, 120), seed=seed
        )
    elif style == 1:
        n, edges = barabasi_albert(
            rng.randrange(6, 60), rng.randrange(1, 4), seed=seed
        )
    else:
        n, edges = planted_partition(
            rng.randrange(2, 5), rng.randrange(3, 8), 0.8, 4, seed=seed
        )
    weights = rng.choice(["random", "degree", "identity"])
    return build_weighted_graph(n, edges, weights=weights, seed=seed)


def forest_fingerprint(communities):
    """Everything a Community forest promises, in reported order."""
    return [
        (
            c.keynode,
            c.influence,
            list(c.own_vertices),
            [child.keynode for child in c.children],
        )
        for c in communities
    ]


def truss_fingerprint(communities):
    return [
        (
            c.keynode,
            c.influence,
            list(c.own_edges),
            [child.keynode for child in c.children],
        )
        for c in communities
    ]


def skip_without_numpy(kernel):
    if kernel == "numpy" and not numpy_available():
        pytest.skip("numpy unavailable")


# ----------------------------------------------------------------------
# cold differential sweep
# ----------------------------------------------------------------------
class TestColdDifferential:
    #: >= 200 seeded enumerations overall (120 cold + progressive below).
    SEEDS = range(120)

    @pytest.mark.parametrize("kernel", FAST_KERNELS)
    def test_matches_python_oracle(self, kernel):
        skip_without_numpy(kernel)
        for seed in self.SEEDS:
            rng = random.Random(30_000 + seed)
            graph = random_graph(seed)
            n = graph.num_vertices
            gamma = rng.randrange(1, 6)
            p = rng.randrange(0, n + 1)
            k = rng.choice([None, 1, 2, rng.randrange(1, n + 2)])
            oracle_record = construct_cvs(
                PrefixView(graph, p), gamma, kernel="python"
            )
            fast_record = construct_cvs(
                PrefixView(graph, p), gamma, kernel=kernel
            )
            oracle = enumerate_top_k(
                graph, oracle_record, k, kernel="python"
            )
            fast = enumerate_top_k(graph, fast_record, k, kernel=kernel)
            assert forest_fingerprint(fast) == forest_fingerprint(oracle), (
                f"seed={seed} gamma={gamma} p={p} k={k}"
            )

    def test_array_kernel_on_python_record(self):
        """The generic (list-of-lists adjacency) scan path of the array
        kernel: flat enumeration over a python-peeled record."""
        for seed in range(0, 60, 3):
            graph = random_graph(seed)
            record = construct_cvs(
                PrefixView(graph, graph.num_vertices), 2, kernel="python"
            )
            oracle = enumerate_top_k(graph, record, kernel="python")
            fast = enumerate_top_k(graph, record, kernel="array")
            assert forest_fingerprint(fast) == forest_fingerprint(oracle), (
                f"seed={seed}"
            )


# ----------------------------------------------------------------------
# progressive (EnumIC-P) differential sweep
# ----------------------------------------------------------------------
class TestProgressiveDifferential:
    SEEDS = range(45)

    @pytest.mark.parametrize("kernel", FAST_KERNELS)
    def test_warm_rounds_match_oracle(self, kernel):
        """Growing prefixes over one shared state/scratch pair: every
        round's incremental yield is byte-identical."""
        skip_without_numpy(kernel)
        for seed in self.SEEDS:
            rng = random.Random(40_000 + seed)
            graph = random_graph(seed)
            n = graph.num_vertices
            gamma = rng.randrange(1, 6)
            state = EnumerationState()
            peel_scratch = PeelScratch()
            enum_scratch = EnumScratch()
            rounds = sorted(rng.sample(range(1, n + 1), min(n, 5)))
            p_prev = 0
            for p in rounds:
                oracle_record = construct_cvs(
                    PrefixView(graph, p), gamma, stop_rank=p_prev,
                    kernel="python",
                )
                fast_record = construct_cvs(
                    PrefixView(graph, p), gamma, stop_rank=p_prev,
                    kernel=kernel, scratch=peel_scratch,
                )
                oracle = list(
                    enumerate_progressive(graph, oracle_record, state)
                )
                fast = list(
                    enumerate_progressive(
                        graph, fast_record, kernel=kernel,
                        scratch=enum_scratch,
                    )
                )
                assert forest_fingerprint(fast) == forest_fingerprint(
                    oracle
                ), f"seed={seed} gamma={gamma} rounds={rounds} p={p}"
                p_prev = p

    @pytest.mark.parametrize("kernel", FAST_KERNELS)
    def test_streams_identical(self, kernel):
        """LocalSearch-P end to end: identical community sequences."""
        skip_without_numpy(kernel)
        for seed in (2, 8, 19):
            graph = random_graph(seed)
            gamma = 2 + seed % 3

            def stream(k):
                searcher = LocalSearchP(graph, gamma=gamma, kernel=k)
                return forest_fingerprint(searcher.stream())

            assert stream(kernel) == stream("python")


# ----------------------------------------------------------------------
# non-containment and truss cohesion
# ----------------------------------------------------------------------
class TestOtherCohesions:
    @pytest.mark.parametrize("kernel", FAST_KERNELS)
    def test_noncontainment_matches(self, kernel):
        skip_without_numpy(kernel)
        for seed in (3, 11, 25):
            graph = random_graph(seed)
            oracle = top_k_noncontainment_communities(
                graph, 8, 2, kernel="python"
            )
            fast = top_k_noncontainment_communities(
                graph, 8, 2, kernel=kernel
            )
            assert forest_fingerprint(fast.communities) == (
                forest_fingerprint(oracle.communities)
            )

    def test_truss_enumeration_matches(self):
        """EnumICC over the flat union-find — the path that exercises
        the dangling-anchor takeover branch organically."""
        for seed in (1, 5, 9, 14, 22):
            graph = random_graph(seed)
            view = PrefixView(graph, graph.num_vertices)
            record = construct_cvs_truss(view, 3)
            oracle = enumerate_truss_top_k(graph, record, kernel="python")
            fast = enumerate_truss_top_k(graph, record, kernel="array")
            assert truss_fingerprint(fast) == truss_fingerprint(oracle), (
                f"seed={seed}"
            )

    def test_truss_end_to_end_matches(self):
        for seed in (4, 16):
            graph = random_graph(seed)
            oracle = top_k_truss_communities(graph, 6, 3, kernel="python")
            fast = top_k_truss_communities(graph, 6, 3, kernel="array")
            assert truss_fingerprint(fast.communities) == (
                truss_fingerprint(oracle.communities)
            )


# ----------------------------------------------------------------------
# scratch lifecycle
# ----------------------------------------------------------------------
class TestScratchReuse:
    def test_buffers_persist_and_no_steady_state_allocation(self):
        """Repeated enumeration over one scratch reuses the stores in
        place: same objects, same capacity — allocation-free."""
        graph = random_graph(6)
        record = construct_cvs(
            PrefixView(graph, graph.num_vertices), 2, kernel="array"
        )
        scratch = EnumScratch()
        first = enumerate_top_k(
            graph, record, kernel="array", scratch=scratch
        )
        parent = scratch.parent
        size = scratch.size
        key = scratch.key
        anchor = scratch.anchor
        cap = len(parent)
        for _ in range(3):
            again = enumerate_top_k(
                graph, record, kernel="array", scratch=scratch
            )
            assert forest_fingerprint(again) == forest_fingerprint(first)
            # Identity, not equality: the same stores, never reallocated.
            assert scratch.parent is parent
            assert scratch.size is size
            assert scratch.key is key
            assert scratch.anchor is anchor
            assert len(scratch.parent) == cap

    def test_round_state_never_leaks(self):
        """An enumeration after unrelated ones equals a cold one."""
        graph = random_graph(10)
        n = graph.num_vertices
        scratch = EnumScratch()
        for p in range(1, n + 1, max(1, n // 6)):
            record = construct_cvs(PrefixView(graph, p), 3, kernel="array")
            enumerate_top_k(graph, record, kernel="array", scratch=scratch)
        record = construct_cvs(PrefixView(graph, n), 3, kernel="array")
        warm = enumerate_top_k(
            graph, record, kernel="array", scratch=scratch
        )
        cold = enumerate_top_k(graph, record, kernel="python")
        assert forest_fingerprint(warm) == forest_fingerprint(cold)

    def test_scratch_survives_graph_switch(self):
        """Reusing one scratch across graphs degrades cold, not wrong."""
        a, b = random_graph(12), random_graph(13)
        scratch = EnumScratch()
        record_a = construct_cvs(
            PrefixView(a, a.num_vertices), 2, kernel="array"
        )
        enumerate_top_k(a, record_a, kernel="array", scratch=scratch)
        record_b = construct_cvs(
            PrefixView(b, b.num_vertices), 2, kernel="array"
        )
        got = enumerate_top_k(b, record_b, kernel="array", scratch=scratch)
        want = enumerate_top_k(b, record_b, kernel="python")
        assert forest_fingerprint(got) == forest_fingerprint(want)

    def test_mode_switch_resets_and_stays_correct(self):
        if not numpy_available():
            pytest.skip("numpy unavailable")
        graph = random_graph(15)
        record = construct_cvs(
            PrefixView(graph, graph.num_vertices), 2, kernel="numpy"
        )
        scratch = EnumScratch()
        want = forest_fingerprint(
            enumerate_top_k(graph, record, kernel="python")
        )
        for kernel in ("array", "numpy", "array"):
            got = enumerate_top_k(
                graph, record, kernel=kernel, scratch=scratch
            )
            assert forest_fingerprint(got) == want, kernel
            assert scratch.mode == (
                "numpy" if kernel == "numpy" else "array"
            )

    def test_reset_restores_virgin_state(self):
        graph = random_graph(18)
        record = construct_cvs(
            PrefixView(graph, graph.num_vertices), 2, kernel="array"
        )
        scratch = EnumScratch()
        enumerate_top_k(graph, record, kernel="array", scratch=scratch)
        scratch.reset()
        assert all(p == -1 for p in scratch.parent)
        assert all(a == -1 for a in scratch.anchor)
        assert not scratch.touched
        assert not scratch.anchored
        assert not scratch.communities


# ----------------------------------------------------------------------
# dispatch
# ----------------------------------------------------------------------
class TestDispatch:
    def test_env_python_selects_oracle(self, monkeypatch):
        """REPRO_KERNEL=python routes around the scratch entirely."""
        monkeypatch.setenv(fastpeel.KERNEL_ENV_VAR, "python")
        graph = random_graph(7)
        record = construct_cvs(
            PrefixView(graph, graph.num_vertices), 2, kernel="python"
        )
        scratch = EnumScratch()
        enumerate_top_k(graph, record, scratch=scratch)
        assert scratch.graph is None  # never bound: oracle path taken

    def test_explicit_state_forces_oracle(self):
        graph = random_graph(7)
        record = construct_cvs(
            PrefixView(graph, graph.num_vertices), 2, kernel="array"
        )
        scratch = EnumScratch()
        got = enumerate_top_k(
            graph, record, state=EnumerationState(), kernel="array",
            scratch=scratch,
        )
        want = enumerate_top_k(graph, record, kernel="python")
        assert forest_fingerprint(got) == forest_fingerprint(want)
        assert scratch.graph is None

    def test_numpy_degrades_to_array_when_missing(self, monkeypatch):
        monkeypatch.setattr(fastpeel, "_numpy_module", None)
        monkeypatch.setattr(fastpeel, "_numpy_checked", True)
        monkeypatch.delenv(fastpeel.KERNEL_ENV_VAR, raising=False)
        graph = random_graph(8)
        record = construct_cvs(
            PrefixView(graph, graph.num_vertices), 2, kernel="array"
        )
        got = enumerate_top_k(graph, record, kernel="numpy")
        want = enumerate_top_k(graph, record, kernel="python")
        assert forest_fingerprint(got) == forest_fingerprint(want)

    def test_enumerate_phase_recorded(self):
        graph = random_graph(4)
        searcher = LocalSearchP(graph, gamma=2, kernel="array")
        list(searcher.stream())
        assert "enumerate" in searcher.stats.phases


# ----------------------------------------------------------------------
# model-based lockstep against the dict oracle
# ----------------------------------------------------------------------
class TestModelLockstep:
    def test_random_op_sequences_match_oracle(self):
        """Random assign/union_into sequences — including the
        dangling-anchor takeover — drive the oracle and the flat scratch
        in lockstep; every vertex's key must agree after every op."""
        N, K = 24, 8
        for seed in range(40):
            rng = random.Random(seed)
            oracle = KeyedDisjointSet()
            scratch = EnumScratch()
            scratch.ensure(max(N, K))
            tracked = []
            for _ in range(70):
                key = rng.randrange(K)
                if tracked and rng.random() < 0.4:
                    v = rng.choice(tracked)
                    oracle.union_into(v, key)
                    scratch.union_into(v, key)
                else:
                    v = rng.randrange(N)
                    oracle.assign(v, key)
                    scratch.assign(v, key)
                    if v not in tracked:
                        tracked.append(v)
                for w in range(N):
                    want = oracle.key_of(w)
                    assert scratch.key_of(w) == (
                        -1 if want is None else want
                    ), f"seed={seed} vertex={w}"
            scratch.reset()
            assert all(scratch.key_of(w) == -1 for w in range(N))


# ----------------------------------------------------------------------
# cluster workers: fork and spawn
# ----------------------------------------------------------------------
@needs_mp
class TestClusterStreams:
    @pytest.mark.parametrize("start", ["fork", "spawn"])
    def test_worker_streams_byte_identical(self, start):
        import multiprocessing as mp

        if start not in mp.get_all_start_methods():
            pytest.skip(f"start method {start!r} unavailable")
        n, edges = chung_lu(160, avg_degree=6.0, seed=41)
        graph = build_weighted_graph(n, edges, weights="degree", seed=41)

        def registry_with():
            registry = GraphRegistry(preload_datasets=False)
            registry.register("g", lambda: graph)
            return registry

        inproc = QueryEngine(registry_with(), cache=ResultCache(8))
        inproc.execute(QuerySpec(graph="g", gamma=3, k=4))
        oracle = inproc.execute(QuerySpec(graph="g", gamma=3, k=10))

        registry = registry_with()
        cache = ResultCache(8)
        engine = QueryEngine(registry, cache=cache)
        pool = ClusterPool(
            1, registry, cache=cache, start_method=start
        )
        try:
            pool.execute(engine, QuerySpec(graph="g", gamma=3, k=4))
            extended = pool.execute(
                engine, QuerySpec(graph="g", gamma=3, k=10)
            )
        finally:
            pool.shutdown()
        assert extended.source == "extended"  # worker cursor resumed
        assert extended.communities == oracle.communities
