"""Unit and model-based tests for the union-find structures."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.disjoint_set import DisjointSet, KeyedDisjointSet


class TestDisjointSet:
    def test_singletons(self):
        ds = DisjointSet()
        assert ds.find(1) == 1
        assert ds.find(2) == 2
        assert not ds.connected(1, 2)
        assert ds.set_count == 2

    def test_union(self):
        ds = DisjointSet()
        assert ds.union(1, 2) is True
        assert ds.union(1, 2) is False
        assert ds.connected(1, 2)
        assert ds.set_count == 1

    def test_transitivity(self):
        ds = DisjointSet()
        ds.union("a", "b")
        ds.union("b", "c")
        assert ds.connected("a", "c")
        assert ds.size_of("a") == 3

    def test_contains_and_len(self):
        ds = DisjointSet()
        ds.make_set(5)
        assert 5 in ds
        assert 6 not in ds
        assert len(ds) == 1

    def test_connected_untouched(self):
        ds = DisjointSet()
        assert not ds.connected(1, 2)

    def test_iter_elements(self):
        ds = DisjointSet()
        ds.union(1, 2)
        assert sorted(ds.iter_elements()) == [1, 2]

    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)),
                    max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_matches_naive_model(self, pairs):
        """Union-find agrees with a naive set-merging model."""
        ds = DisjointSet()
        model = {}  # element -> frozenset id (represented by set object)
        for a, b in pairs:
            for x in (a, b):
                if x not in model:
                    model[x] = {x}
            if model[a] is not model[b]:
                merged = model[a] | model[b]
                for x in merged:
                    model[x] = merged
            ds.union(a, b)
        for a in model:
            for b in model:
                assert ds.connected(a, b) == (model[a] is model[b])


class TestKeyedDisjointSet:
    def test_untouched_vertex_has_no_key(self):
        v2k = KeyedDisjointSet()
        assert v2k.key_of(1) is None
        assert 1 not in v2k

    def test_assign_and_lookup(self):
        v2k = KeyedDisjointSet()
        v2k.assign(1, 100)
        v2k.assign(2, 100)
        assert v2k.key_of(1) == 100
        assert v2k.key_of(2) == 100
        assert 1 in v2k

    def test_union_into_relabels(self):
        # Mirrors EnumIC: community 100 built first (higher weight), then
        # community 50 absorbs it.
        v2k = KeyedDisjointSet()
        v2k.assign(1, 100)
        v2k.assign(2, 100)
        v2k.assign(3, 50)
        v2k.union_into(1, 50)
        assert v2k.key_of(1) == 50
        assert v2k.key_of(2) == 50  # whole set relabelled
        assert v2k.key_of(3) == 50

    def test_union_into_same_set_is_noop(self):
        v2k = KeyedDisjointSet()
        v2k.assign(1, 9)
        v2k.union_into(1, 9)
        assert v2k.key_of(1) == 9

    def test_chained_absorption(self):
        # 300 absorbed by 200, then 200's set absorbed by 100.
        v2k = KeyedDisjointSet()
        v2k.assign(1, 300)
        v2k.assign(2, 200)
        v2k.union_into(1, 200)
        v2k.assign(3, 100)
        v2k.union_into(2, 100)
        assert v2k.key_of(1) == 100
        assert v2k.key_of(2) == 100
        assert v2k.key_of(3) == 100

    def test_union_into_fresh_key(self):
        # Merging into a key that has no set yet simply relabels.
        v2k = KeyedDisjointSet()
        v2k.assign(1, 7)
        v2k.union_into(1, 3)
        assert v2k.key_of(1) == 3

    @given(st.lists(st.integers(0, 9), min_size=1, max_size=10, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_enumic_processing_pattern(self, keynodes):
        """Simulate EnumIC's access pattern: each vertex assigned once to a
        fresh key (decreasing keys), later keys absorb earlier sets."""
        v2k = KeyedDisjointSet()
        rng = random.Random(42)
        assigned = {}
        groups = {}
        for i, key in enumerate(keynodes):
            vertex = 1000 + i
            v2k.assign(vertex, key)
            assigned[vertex] = key
            groups[key] = vertex
            # Absorb a random earlier key's set.
            earlier = [k for k in groups if k != key]
            if earlier:
                absorbed = rng.choice(earlier)
                v2k.union_into(groups[absorbed], key)
                for v, k in assigned.items():
                    if k == absorbed:
                        assigned[v] = key
                groups.pop(absorbed)
                groups[key] = vertex
        for vertex, key in assigned.items():
            assert v2k.key_of(vertex) == key


class TestUnionIntoDanglingAnchor:
    """``union_into`` where the target key has no set — the
    dangling-anchor takeover branch of ``KeyedDisjointSet.union_into``:
    the vertex's set takes the key over, and the *old* key's anchor is
    dropped when it pointed into this set.  This branch is the oracle
    for the flat kernels' takeover path and is exercised organically by
    EnumICC (truss), where an endpoint tracked under an earlier keynode
    is merged into a later keynode's not-yet-created set.
    """

    def test_keyless_takeover_relabels_whole_set(self):
        v2k = KeyedDisjointSet()
        v2k.assign(1, 100)
        v2k.assign(2, 100)
        v2k.union_into(1, 50)  # key 50 has no set: takeover
        assert v2k.key_of(1) == 50
        assert v2k.key_of(2) == 50

    def test_old_key_anchor_cleanup(self):
        # After the takeover the old key must behave as never-assigned:
        # a later assign under it starts a fresh set instead of joining
        # (and relabelling) the taken-over one.
        v2k = KeyedDisjointSet()
        v2k.assign(1, 100)
        v2k.union_into(1, 50)
        v2k.assign(2, 100)
        assert v2k.key_of(2) == 100
        assert v2k.key_of(1) == 50  # untouched by the reborn 100-set

    def test_chained_takeovers(self):
        # Every takeover cleans the previous key's anchor in turn.
        v2k = KeyedDisjointSet()
        v2k.assign(1, 100)
        v2k.union_into(1, 50)
        v2k.union_into(1, 20)
        assert v2k.key_of(1) == 20
        v2k.assign(2, 50)
        assert v2k.key_of(2) == 50
        assert v2k.key_of(1) == 20

    def test_takeover_after_link_resolves_dangling_anchor(self):
        # _link deliberately leaves the absorbed key's anchor dangling;
        # a later union_into under that key must resolve the anchor to
        # the merged set and relabel it (the k_root == v_root branch),
        # not treat the key as set-less.
        v2k = KeyedDisjointSet()
        v2k.assign(1, 100)
        v2k.assign(2, 200)
        v2k.union_into(1, 200)  # link: key 100's anchor now dangles
        v2k.union_into(2, 100)
        assert v2k.key_of(1) == 100
        assert v2k.key_of(2) == 100

    def test_truss_pattern_takeover_then_growth(self):
        # The EnumICC access pattern end to end: takeover, join, old-key
        # rebirth, then a normal merge back into the taken-over key.
        v2k = KeyedDisjointSet()
        v2k.assign(5, 9)
        v2k.assign(6, 9)
        v2k.union_into(6, 4)  # key 4 never assigned: takeover of {5, 6}
        assert v2k.key_of(5) == 4
        v2k.assign(7, 4)  # joins the taken-over set via its new anchor
        assert v2k.key_of(7) == 4
        v2k.assign(8, 9)  # old key starts over, disjoint from the above
        assert v2k.key_of(8) == 9
        v2k.union_into(8, 4)  # ordinary merge path (anchor exists)
        assert v2k.key_of(8) == 4
        assert v2k.key_of(5) == 4
