"""Unit and model-based tests for the union-find structures."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.disjoint_set import DisjointSet, KeyedDisjointSet


class TestDisjointSet:
    def test_singletons(self):
        ds = DisjointSet()
        assert ds.find(1) == 1
        assert ds.find(2) == 2
        assert not ds.connected(1, 2)
        assert ds.set_count == 2

    def test_union(self):
        ds = DisjointSet()
        assert ds.union(1, 2) is True
        assert ds.union(1, 2) is False
        assert ds.connected(1, 2)
        assert ds.set_count == 1

    def test_transitivity(self):
        ds = DisjointSet()
        ds.union("a", "b")
        ds.union("b", "c")
        assert ds.connected("a", "c")
        assert ds.size_of("a") == 3

    def test_contains_and_len(self):
        ds = DisjointSet()
        ds.make_set(5)
        assert 5 in ds
        assert 6 not in ds
        assert len(ds) == 1

    def test_connected_untouched(self):
        ds = DisjointSet()
        assert not ds.connected(1, 2)

    def test_iter_elements(self):
        ds = DisjointSet()
        ds.union(1, 2)
        assert sorted(ds.iter_elements()) == [1, 2]

    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)),
                    max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_matches_naive_model(self, pairs):
        """Union-find agrees with a naive set-merging model."""
        ds = DisjointSet()
        model = {}  # element -> frozenset id (represented by set object)
        for a, b in pairs:
            for x in (a, b):
                if x not in model:
                    model[x] = {x}
            if model[a] is not model[b]:
                merged = model[a] | model[b]
                for x in merged:
                    model[x] = merged
            ds.union(a, b)
        for a in model:
            for b in model:
                assert ds.connected(a, b) == (model[a] is model[b])


class TestKeyedDisjointSet:
    def test_untouched_vertex_has_no_key(self):
        v2k = KeyedDisjointSet()
        assert v2k.key_of(1) is None
        assert 1 not in v2k

    def test_assign_and_lookup(self):
        v2k = KeyedDisjointSet()
        v2k.assign(1, 100)
        v2k.assign(2, 100)
        assert v2k.key_of(1) == 100
        assert v2k.key_of(2) == 100
        assert 1 in v2k

    def test_union_into_relabels(self):
        # Mirrors EnumIC: community 100 built first (higher weight), then
        # community 50 absorbs it.
        v2k = KeyedDisjointSet()
        v2k.assign(1, 100)
        v2k.assign(2, 100)
        v2k.assign(3, 50)
        v2k.union_into(1, 50)
        assert v2k.key_of(1) == 50
        assert v2k.key_of(2) == 50  # whole set relabelled
        assert v2k.key_of(3) == 50

    def test_union_into_same_set_is_noop(self):
        v2k = KeyedDisjointSet()
        v2k.assign(1, 9)
        v2k.union_into(1, 9)
        assert v2k.key_of(1) == 9

    def test_chained_absorption(self):
        # 300 absorbed by 200, then 200's set absorbed by 100.
        v2k = KeyedDisjointSet()
        v2k.assign(1, 300)
        v2k.assign(2, 200)
        v2k.union_into(1, 200)
        v2k.assign(3, 100)
        v2k.union_into(2, 100)
        assert v2k.key_of(1) == 100
        assert v2k.key_of(2) == 100
        assert v2k.key_of(3) == 100

    def test_union_into_fresh_key(self):
        # Merging into a key that has no set yet simply relabels.
        v2k = KeyedDisjointSet()
        v2k.assign(1, 7)
        v2k.union_into(1, 3)
        assert v2k.key_of(1) == 3

    @given(st.lists(st.integers(0, 9), min_size=1, max_size=10, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_enumic_processing_pattern(self, keynodes):
        """Simulate EnumIC's access pattern: each vertex assigned once to a
        fresh key (decreasing keys), later keys absorb earlier sets."""
        v2k = KeyedDisjointSet()
        rng = random.Random(42)
        assigned = {}
        groups = {}
        for i, key in enumerate(keynodes):
            vertex = 1000 + i
            v2k.assign(vertex, key)
            assigned[vertex] = key
            groups[key] = vertex
            # Absorb a random earlier key's set.
            earlier = [k for k in groups if k != key]
            if earlier:
                absorbed = rng.choice(earlier)
                v2k.union_into(groups[absorbed], key)
                for v, k in assigned.items():
                    if k == absorbed:
                        assigned[v] = key
                groups.pop(absorbed)
                groups[key] = vertex
        for vertex, key in assigned.items():
            assert v2k.key_of(vertex) == key
