"""Edge cases and failure injection across the public API.

Degenerate graphs, boundary parameters, and deliberately awkward inputs:
the situations a downstream user will hit first.
"""

from __future__ import annotations

import pytest

from repro import (
    LocalSearch,
    LocalSearchP,
    top_k_influential_communities,
    top_k_noncontainment_communities,
    top_k_truss_communities,
)
from repro.graph.builder import GraphBuilder, graph_from_arrays
from repro.graph.subgraph import PrefixView
from repro.core.count import construct_cvs


class TestDegenerateGraphs:
    def test_single_vertex(self):
        g = graph_from_arrays(1, [])
        assert top_k_influential_communities(g, 1, 1).communities == []

    def test_single_edge(self):
        g = graph_from_arrays(2, [(0, 1)])
        result = top_k_influential_communities(g, 1, 1)
        assert len(result.communities) == 1
        assert result.communities[0].num_vertices == 2

    def test_no_edges(self):
        g = graph_from_arrays(5, [])
        assert top_k_influential_communities(g, 3, 1).communities == []
        assert list(LocalSearchP(g, gamma=1).stream()) == []

    def test_star_gamma1(self):
        g = graph_from_arrays(6, [(0, i) for i in range(1, 6)])
        # Top-1: the centre + the heaviest leaf (influence 5); the whole
        # star is the lowest-influence community in the chain.
        result = top_k_influential_communities(g, 1, 1)
        assert result.communities[0].num_vertices == 2
        full = list(LocalSearchP(g, gamma=1).stream())
        assert len(full) == 5
        assert full[-1].num_vertices == 6

    def test_star_gamma2(self):
        g = graph_from_arrays(6, [(0, i) for i in range(1, 6)])
        assert top_k_influential_communities(g, 1, 2).communities == []

    def test_self_contained_component_per_weight_level(self):
        # A disconnected graph: 3 triangles at separate weight bands.
        edges = []
        for base in (0, 3, 6):
            edges += [(base, base + 1), (base, base + 2),
                      (base + 1, base + 2)]
        g = graph_from_arrays(9, edges)
        communities = list(LocalSearchP(g, gamma=2).stream())
        assert len(communities) == 3
        assert [c.num_vertices for c in communities] == [3, 3, 3]

    def test_path_graph_communities_nest(self):
        g = graph_from_arrays(6, [(i, i + 1) for i in range(5)])
        communities = list(LocalSearchP(g, gamma=1).stream())
        # Each suffix-removal yields one community; all nested prefixes.
        influences = [c.influence for c in communities]
        assert influences == sorted(influences, reverse=True)
        top = communities[0]
        assert top.num_vertices == 2  # the two heaviest vertices


class TestBoundaryParameters:
    def test_gamma_equals_degeneracy(self, two_cliques):
        result = top_k_influential_communities(two_cliques, 5, 3)
        assert len(result.communities) == 2

    def test_gamma_above_degeneracy(self, two_cliques):
        assert top_k_influential_communities(
            two_cliques, 1, 99
        ).communities == []

    def test_k_equals_total(self, fig3):
        result = top_k_influential_communities(fig3, 8, 3)
        assert len(result.communities) == 8

    def test_huge_delta_still_correct(self, fig3):
        result = LocalSearch(fig3, gamma=3, delta=1e6).search(4)
        assert len(result.communities) == 4
        # One growth step jumps to the whole graph.
        assert result.stats.rounds <= 2

    def test_delta_just_above_one(self, fig3):
        result = LocalSearch(fig3, gamma=3, delta=1.0001).search(4)
        assert len(result.communities) == 4

    def test_truss_gamma_boundary(self, triangle):
        assert len(top_k_truss_communities(triangle, 1, 3).communities) == 1
        assert top_k_truss_communities(triangle, 1, 4).communities == []


class TestAwkwardWeights:
    def test_negative_weights(self):
        b = GraphBuilder()
        for i, w in enumerate([-1.0, -2.0, -3.0, -4.0]):
            b.add_vertex(i, w)
        for i in range(4):
            for j in range(i + 1, 4):
                b.add_edge(i, j)
        g = b.build()
        result = top_k_influential_communities(g, 1, 3)
        assert result.communities[0].influence == -4.0

    def test_tiny_float_weights(self):
        b = GraphBuilder()
        for i in range(4):
            b.add_vertex(i, 1e-12 * (4 - i))
        for i in range(4):
            for j in range(i + 1, 4):
                b.add_edge(i, j)
        result = top_k_influential_communities(b.build(), 1, 3)
        assert result.communities[0].num_vertices == 4

    def test_all_equal_weights_detied(self):
        b = GraphBuilder(ties="rank")
        for i in range(4):
            b.add_vertex(i, 5.0)
        for i in range(4):
            for j in range(i + 1, 4):
                b.add_edge(i, j)
        g = b.build()
        result = top_k_influential_communities(g, 1, 3)
        assert len(result.communities) == 1

    def test_string_labels_everywhere(self):
        from repro import WeightedGraph

        g = WeightedGraph.from_edges(
            [("a", "b"), ("b", "c"), ("a", "c")],
            weights={"a": 3.0, "b": 2.0, "c": 1.0},
        )
        result = top_k_influential_communities(g, 1, 2)
        assert sorted(result.communities[0].vertices) == ["a", "b", "c"]
        assert result.communities[0].keynode_label == "c"


class TestStopRankEdgeCases:
    def test_stop_rank_equal_to_prefix(self, fig3):
        record = construct_cvs(PrefixView(fig3, 7), 3, stop_rank=7)
        assert record.keys == []

    def test_progressive_single_round_graph(self):
        # gamma+1 >= n: the first round is already the whole graph.
        g = graph_from_arrays(4, [(i, j) for i in range(4)
                                  for j in range(i + 1, 4)])
        communities = list(LocalSearchP(g, gamma=3).stream())
        assert len(communities) == 1

    def test_abandoned_stream_is_resumable_via_new_searcher(self, fig3):
        stream = LocalSearchP(fig3, gamma=3).stream()
        first = next(stream)
        del stream  # abandon mid-flight
        again = list(LocalSearchP(fig3, gamma=3).stream())
        assert again[0].influence == first.influence
        assert len(again) == 8
