"""QueryEngine planner/dispatch, ServiceMetrics, and the serve CLI loop."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.errors import QueryParameterError
from repro.graph.builder import graph_from_arrays
from repro.graph.io import write_edge_list, write_weights
from repro.service import (
    GraphRegistry,
    QueryEngine,
    ResultCache,
    ServiceMetrics,
    TopKQuery,
)
from repro.service.metrics import percentile


def two_k4s():
    return graph_from_arrays(
        8,
        [
            (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
            (4, 5), (4, 6), (4, 7), (5, 6), (5, 7), (6, 7),
            (3, 4),
        ],
    )


@pytest.fixture()
def registry():
    registry = GraphRegistry(preload_datasets=False)
    registry.register("g", two_k4s)
    return registry


@pytest.fixture()
def edge_file(tmp_path):
    path = tmp_path / "g.txt"
    write_edge_list(
        path,
        [
            (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
            (4, 5), (4, 6), (4, 7), (5, 6), (5, 7), (6, 7),
            (3, 4),
        ],
    )
    weights = tmp_path / "w.txt"
    write_weights(weights, {i: float(10 - i) for i in range(8)})
    return str(path), str(weights)


class TestPlanner:
    def test_auto_resolves_to_progressive(self, registry):
        engine = QueryEngine(registry)
        plan = engine.plan(TopKQuery(graph="g"))
        assert plan.algorithm == "localsearch-p"
        assert plan.progressive

    def test_explicit_algorithms_pass_through(self, registry):
        engine = QueryEngine(registry)
        for algorithm, progressive in [
            ("localsearch-p", True),
            ("localsearch", False),
            ("forward", False),
            ("backward", False),
            ("onlineall", False),
            ("truss", False),
            ("noncontainment", False),
        ]:
            plan = engine.plan(TopKQuery(graph="g", algorithm=algorithm))
            assert plan.algorithm == algorithm
            assert plan.progressive is progressive

    def test_invalid_query_parameters_raise(self):
        with pytest.raises(QueryParameterError):
            TopKQuery(graph="g", k=0)
        with pytest.raises(QueryParameterError):
            TopKQuery(graph="g", gamma=0)
        with pytest.raises(QueryParameterError):
            TopKQuery(graph="g", delta=1.0)
        with pytest.raises(QueryParameterError):
            TopKQuery(graph="g", algorithm="quantum")


class TestDispatch:
    @pytest.mark.parametrize(
        "algorithm",
        ["auto", "localsearch", "localsearch-p", "forward", "onlineall",
         "backward"],
    )
    def test_all_min_degree_algorithms_agree(self, registry, algorithm):
        engine = QueryEngine(registry, cache=ResultCache())
        result = engine.execute(
            TopKQuery(graph="g", gamma=3, k=2, algorithm=algorithm)
        )
        assert len(result) == 2
        assert list(result.influences) == sorted(
            result.influences, reverse=True
        )
        # The heavy K4 {0..3} has keynode weight rank 4 under default
        # rank weights; both K4s appear.
        assert result.communities[0].size in (4, 8)

    def test_truss_and_noncontainment_dispatch(self, registry):
        engine = QueryEngine(registry)
        truss = engine.execute(
            TopKQuery(graph="g", gamma=4, k=1, algorithm="truss")
        )
        assert truss.communities[0].size == 4
        nc = engine.execute(
            TopKQuery(graph="g", gamma=3, k=2, algorithm="noncontainment")
        )
        assert len(nc) >= 1

    def test_result_serialises_deterministically(self, registry):
        engine = QueryEngine(registry)
        a = engine.execute(TopKQuery(graph="g", gamma=3, k=2))
        b = engine.execute(TopKQuery(graph="g", gamma=3, k=2))
        dump = lambda r: json.dumps(
            [v.to_dict() for v in r.communities], sort_keys=True
        )
        assert dump(a) == dump(b)
        payload = json.loads(a.to_json())
        assert payload["graph"] == "g"
        assert payload["algorithm"] == "localsearch-p"
        assert len(payload["communities"]) == 2
        assert all("members" in c for c in payload["communities"])


class TestMetrics:
    def test_percentile_nearest_rank(self):
        assert percentile([], 50) is None
        assert percentile([1.0], 99) == 1.0
        values = list(map(float, range(1, 101)))
        assert percentile(values, 50) == 50.0
        assert percentile(values, 90) == 90.0
        assert percentile(values, 99) == 99.0

    def test_engine_records_metrics(self, registry):
        metrics = ServiceMetrics()
        engine = QueryEngine(registry, cache=ResultCache(), metrics=metrics)
        engine.execute(TopKQuery(graph="g", gamma=3, k=2))
        engine.execute(TopKQuery(graph="g", gamma=3, k=2))
        engine.execute(TopKQuery(graph="g", gamma=3, k=1))
        snap = metrics.snapshot()
        assert snap["queries_served"] == 3
        assert snap["by_source"] == {"cold": 1, "cache": 2}
        assert snap["by_algorithm"] == {"localsearch-p": 3}
        assert metrics.cache_hit_rate == pytest.approx(2 / 3)
        pcts = metrics.latency_percentiles("localsearch-p")
        assert pcts["p50"] is not None and pcts["p99"] is not None
        assert pcts["p50"] <= pcts["p99"]

    def test_engine_threads_phase_breakdown_to_family_rows(self, registry):
        metrics = ServiceMetrics()
        engine = QueryEngine(registry, cache=ResultCache(), metrics=metrics)
        engine.execute(TopKQuery(graph="g", gamma=3, k=2))
        [row] = metrics.by_family().values()
        # The progressive searcher peeled and enumerated: both halves of
        # the kernel show up in the family's breakdown.
        assert row["phases_ms"].get("peel", 0.0) >= 0.0
        assert "enumerate" in row["phases_ms"]
        # A pure cache hit does no kernel work but must not erase the
        # breakdown already recorded for the family.
        engine.execute(TopKQuery(graph="g", gamma=3, k=1))
        [row] = metrics.by_family().values()
        assert "enumerate" in row["phases_ms"]
        # Static algorithms thread their SearchStats phases too.
        engine.execute(
            TopKQuery(graph="g", gamma=3, k=2, algorithm="localsearch")
        )
        static_rows = [
            r for label, r in metrics.by_family().items()
            if "|localsearch|" in label
        ]
        assert static_rows and "enumerate" in static_rows[0]["phases_ms"]

    def test_session_counters(self, registry):
        metrics = ServiceMetrics()
        metrics.session_opened()
        metrics.session_closed()
        metrics.session_closed(expired=True)
        snap = metrics.snapshot()
        assert snap["sessions_opened"] == 1
        assert snap["sessions_closed"] == 2
        assert snap["sessions_expired"] == 1


def run_serve(script: str, extra_args=()):
    out = io.StringIO()
    code = main(
        ["serve", "--no-datasets", *extra_args],
        out=out,
        in_stream=io.StringIO(script),
    )
    return code, out.getvalue()


class TestServeCLI:
    def test_serve_loads_queries_and_reuses_graph(self, edge_file):
        edges, weights = edge_file
        script = "\n".join(
            [
                f"load toy {edges} {weights}",
                "query toy k=2 gamma=3",
                "query toy k=1 gamma=3",
                "query toy k=2 gamma=3 algorithm=localsearch",
                "graphs",
                "metrics",
                "quit",
            ]
        )
        code, text = run_serve(script)
        assert code == 0
        assert "loaded 'toy' v1: 8 vertices, 13 edges" in text
        # Same graph version throughout: never rebuilt.
        assert "v2" not in text
        assert "localsearch-p[cold]: 2 communities" in text
        assert "localsearch-p[cache]: 1 communities" in text
        assert "localsearch[cold]: 2 communities" in text
        assert "influence=7" in text
        assert "queries_served: 3" in text

    def test_serve_sessions_stream_without_repeats(self, edge_file):
        edges, weights = edge_file
        script = "\n".join(
            [
                f"load toy {edges} {weights}",
                "session open toy gamma=3",
                "session next s1 1",
                "session next s1 5",
                "sessions",
                "session close s1",
                "quit",
            ]
        )
        code, text = run_serve(script)
        assert code == 0
        assert "session s1 open" in text
        assert "top-1: influence=7" in text
        assert "top-2: influence=3" in text
        assert "(session s1 exhausted)" in text
        assert "session s1 closed" in text
        # top-1 printed exactly once: batches never repeat communities.
        assert text.count("top-1:") == 1

    def test_serve_handles_errors_and_continues(self, edge_file):
        edges, _ = edge_file
        script = "\n".join(
            [
                "query missing k=2",
                "wibble",
                "session next s99",
                f"load toy {edges}",
                "query toy k=1 gamma=3",
                "quit",
            ]
        )
        code, text = run_serve(script)
        assert code == 0
        assert "error: graph 'missing' is not registered" in text
        assert "error: unknown command 'wibble'" in text
        assert "error: session 's99' does not exist" in text
        assert "localsearch-p[cold]: 1 communities" in text

    def test_serve_script_flag(self, edge_file, tmp_path):
        edges, weights = edge_file
        script_path = tmp_path / "cmds.txt"
        script_path.write_text(
            f"load toy {edges} {weights}\nquery toy k=1 gamma=3\n"
        )
        out = io.StringIO()
        code = main(
            ["serve", "--no-datasets", "--script", str(script_path)], out=out
        )
        assert code == 0
        assert "localsearch-p[cold]: 1 communities" in out.getvalue()

    def test_serve_help_and_eof_exit(self):
        code, text = run_serve("help\n")
        assert code == 0
        assert "commands:" in text

    def test_serve_on_dataset_registry(self):
        out = io.StringIO()
        code = main(
            ["serve"], out=out, in_stream=io.StringIO("graphs\nquit\n")
        )
        assert code == 0
        assert "8 graphs registered" in out.getvalue()
