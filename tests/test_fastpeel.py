"""Differential and reuse tests for the flat-array peel kernels.

The python kernel (:func:`repro.core.count.peel_cvs`) is the oracle;
the ``array`` and ``numpy`` kernels must produce byte-identical
:class:`CVSRecord` outputs for every graph, γ, prefix, ``stop_rank`` and
non-containment setting — cold and across warm (scratch-carrying)
progressive rounds — and the progressive community streams must match
element for element.
"""

import random

import pytest

from repro.core import fastpeel
from repro.core.count import construct_cvs
from repro.core.fastpeel import (
    KERNELS,
    PeelScratch,
    fast_construct_cvs,
    numpy_available,
    resolve_kernel,
)
from repro.core.progressive import LocalSearchP
from repro.graph.csr import CSRAdjacency, PrefixAdjacency
from repro.graph.subgraph import PrefixView
from repro.workloads.generators import (
    barabasi_albert,
    build_weighted_graph,
    erdos_renyi,
    planted_partition,
)

FAST_KERNELS = ("array", "numpy")


@pytest.fixture(autouse=True)
def force_numpy_path(monkeypatch):
    """Tiny test graphs must still exercise the vectorised numpy path."""
    monkeypatch.setattr(fastpeel, "NUMPY_MIN_P", 0)


def record_fingerprint(record):
    """Everything a CVSRecord promises, with nbrs materialised."""
    return (
        record.keys,
        record.cvs,
        record.starts,
        record.p,
        record.gamma,
        record.stop_rank,
        record.noncontainment,
        [list(record.nbrs[v]) for v in range(record.p)],
    )


def random_graph(seed: int):
    rng = random.Random(seed)
    style = seed % 3
    if style == 0:
        n, edges = erdos_renyi(
            rng.randrange(4, 50), rng.randrange(0, 120), seed=seed
        )
    elif style == 1:
        n, edges = barabasi_albert(
            rng.randrange(6, 60), rng.randrange(1, 4), seed=seed
        )
    else:
        n, edges = planted_partition(
            rng.randrange(2, 5), rng.randrange(3, 8), 0.8, 4, seed=seed
        )
    weights = rng.choice(["random", "degree", "identity"])
    return build_weighted_graph(n, edges, weights=weights, seed=seed)


class TestColdDifferential:
    #: >= 200 seeded random graphs overall (120 cold + 90 progressive).
    SEEDS = range(120)

    @pytest.mark.parametrize("kernel", FAST_KERNELS)
    def test_matches_python_oracle(self, kernel):
        if kernel == "numpy" and not numpy_available():
            pytest.skip("numpy unavailable")
        for seed in self.SEEDS:
            rng = random.Random(10_000 + seed)
            graph = random_graph(seed)
            n = graph.num_vertices
            gamma = rng.randrange(1, 6)
            p = rng.randrange(0, n + 1)
            stop = rng.randrange(0, p + 1) if p else 0
            track = bool(rng.getrandbits(1))
            oracle = construct_cvs(
                PrefixView(graph, p),
                gamma,
                stop_rank=stop,
                track_noncontainment=track,
                kernel="python",
            )
            fast = construct_cvs(
                PrefixView(graph, p),
                gamma,
                stop_rank=stop,
                track_noncontainment=track,
                kernel=kernel,
            )
            assert record_fingerprint(fast) == record_fingerprint(oracle), (
                f"seed={seed} gamma={gamma} p={p} stop={stop} track={track}"
            )


class TestProgressiveDifferential:
    SEEDS = range(45)

    @pytest.mark.parametrize("kernel", FAST_KERNELS)
    def test_warm_rounds_match_oracle(self, kernel):
        """Growing prefixes over one scratch: every round byte-identical."""
        if kernel == "numpy" and not numpy_available():
            pytest.skip("numpy unavailable")
        for seed in self.SEEDS:
            rng = random.Random(20_000 + seed)
            graph = random_graph(seed)
            n = graph.num_vertices
            gamma = rng.randrange(1, 6)
            track = bool(rng.getrandbits(1))
            scratch = PeelScratch()
            rounds = sorted(rng.sample(range(1, n + 1), min(n, 5)))
            p_prev = 0
            for p in rounds:
                oracle = construct_cvs(
                    PrefixView(graph, p),
                    gamma,
                    stop_rank=p_prev,
                    track_noncontainment=track,
                    kernel="python",
                )
                fast = construct_cvs(
                    PrefixView(graph, p),
                    gamma,
                    stop_rank=p_prev,
                    track_noncontainment=track,
                    kernel=kernel,
                    scratch=scratch,
                )
                assert record_fingerprint(fast) == record_fingerprint(
                    oracle
                ), f"seed={seed} gamma={gamma} rounds={rounds} p={p}"
                p_prev = p

    @pytest.mark.parametrize("kernel", FAST_KERNELS)
    @pytest.mark.parametrize("delta", [1.5, 2.0, 3.0])
    def test_streams_identical(self, kernel, delta):
        """LocalSearch-P yields the identical community sequence."""
        if kernel == "numpy" and not numpy_available():
            pytest.skip("numpy unavailable")
        for seed in (1, 7, 23):
            graph = random_graph(seed)
            gamma = 2 + seed % 3
            def stream(k):
                searcher = LocalSearchP(
                    graph, gamma=gamma, delta=delta, kernel=k
                )
                return [
                    (c.keynode, c.influence, sorted(c.vertex_ranks))
                    for c in searcher.stream()
                ]
            assert stream(kernel) == stream("python")

    @pytest.mark.parametrize("kernel", FAST_KERNELS)
    def test_noncontainment_streams_identical(self, kernel):
        if kernel == "numpy" and not numpy_available():
            pytest.skip("numpy unavailable")
        for seed in (3, 11):
            graph = random_graph(seed)
            def stream(k):
                searcher = LocalSearchP(
                    graph, gamma=2, noncontainment=True, kernel=k
                )
                return [
                    (c.keynode, sorted(c.vertex_ranks))
                    for c in searcher.stream()
                ]
            assert stream(kernel) == stream("python")


class TestScratchReuse:
    def test_buffers_persist_across_rounds(self):
        graph = random_graph(5)
        n = graph.num_vertices
        scratch = PeelScratch()
        construct_cvs(
            PrefixView(graph, n // 2), 2, kernel="array", scratch=scratch
        )
        deg_buffer = scratch.deg
        stack_buffer = scratch.stack
        construct_cvs(
            PrefixView(graph, n),
            2,
            stop_rank=n // 2,
            kernel="array",
            scratch=scratch,
        )
        # Identity, not equality: the same buffers were grown in place.
        assert scratch.deg is deg_buffer
        assert scratch.stack is stack_buffer
        assert len(scratch.deg) >= n

    def test_round_state_never_leaks(self):
        """A peel after unrelated rounds equals a peel from nothing."""
        graph = random_graph(9)
        n = graph.num_vertices
        scratch = PeelScratch()
        for p in range(1, n + 1):
            construct_cvs(
                PrefixView(graph, p), 3, kernel="array", scratch=scratch
            )
        warm = construct_cvs(
            PrefixView(graph, n), 3, kernel="array", scratch=scratch
        )
        cold = construct_cvs(PrefixView(graph, n), 3, kernel="array")
        assert record_fingerprint(warm) == record_fingerprint(cold)

    def test_scratch_survives_graph_switch(self):
        """Reusing one scratch across graphs degrades cold, not wrong."""
        a, b = random_graph(12), random_graph(13)
        scratch = PeelScratch()
        construct_cvs(
            PrefixView(a, a.num_vertices), 2, kernel="array", scratch=scratch
        )
        got = construct_cvs(
            PrefixView(b, b.num_vertices), 2, kernel="array", scratch=scratch
        )
        want = construct_cvs(PrefixView(b, b.num_vertices), 2, kernel="python")
        assert record_fingerprint(got) == record_fingerprint(want)

    def test_gamma_switch_is_correct(self):
        graph = random_graph(17)
        n = graph.num_vertices
        scratch = PeelScratch()
        construct_cvs(PrefixView(graph, n), 2, kernel="array", scratch=scratch)
        got = construct_cvs(
            PrefixView(graph, n), 4, kernel="array", scratch=scratch
        )
        want = construct_cvs(PrefixView(graph, n), 4, kernel="python")
        assert record_fingerprint(got) == record_fingerprint(want)


class TestKernelResolution:
    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(fastpeel.KERNEL_ENV_VAR, "python")
        assert resolve_kernel("array") == "array"

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv(fastpeel.KERNEL_ENV_VAR, "python")
        assert resolve_kernel() == "python"
        monkeypatch.setenv(fastpeel.KERNEL_ENV_VAR, "array")
        assert resolve_kernel() == "array"

    def test_auto_default(self, monkeypatch):
        monkeypatch.delenv(fastpeel.KERNEL_ENV_VAR, raising=False)
        expected = "numpy" if numpy_available() else "array"
        assert resolve_kernel() == expected
        assert resolve_kernel("auto") == expected

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            resolve_kernel("cuda")

    def test_numpy_degrades_to_array_when_missing(self, monkeypatch):
        monkeypatch.setattr(fastpeel, "_numpy_module", None)
        monkeypatch.setattr(fastpeel, "_numpy_checked", True)
        monkeypatch.delenv(fastpeel.KERNEL_ENV_VAR, raising=False)
        assert not numpy_available()
        assert resolve_kernel("numpy") == "array"
        assert resolve_kernel() == "array"
        # And the peel itself still works on the stdlib path.
        graph = random_graph(2)
        got = fast_construct_cvs(
            PrefixView(graph, graph.num_vertices), 2, kernel="numpy"
        )
        want = construct_cvs(
            PrefixView(graph, graph.num_vertices), 2, kernel="python"
        )
        assert record_fingerprint(got) == record_fingerprint(want)

    def test_gamma_validation(self):
        graph = random_graph(1)
        with pytest.raises(ValueError):
            fast_construct_cvs(PrefixView(graph, 3), 0)

    def test_stats_report_kernel(self):
        graph = random_graph(4)
        searcher = LocalSearchP(graph, gamma=2, kernel="array")
        list(searcher.stream())
        assert searcher.stats.kernel == "array"


class TestCSRAdjacency:
    def test_mirrors_graph_adjacency(self):
        graph = random_graph(21)
        csr = graph.csr()
        assert csr is graph.csr()  # cached on the instance
        up_off, up_tgt, down_off, down_tgt = csr.lists()
        for u in range(graph.num_vertices):
            assert up_tgt[up_off[u]:up_off[u + 1]] == graph.neighbors_up(u)
            assert (
                down_tgt[down_off[u]:down_off[u + 1]]
                == graph.neighbors_down(u)
            )
        assert csr.num_edges == graph.num_edges
        assert csr.nbytes > 0

    def test_pickle_roundtrip(self):
        import pickle

        graph = random_graph(22)
        csr = graph.csr()
        clone = pickle.loads(pickle.dumps(csr))
        assert clone.lists() == csr.lists()

    def test_prefix_adjacency_matches_neighbor_lists(self):
        graph = random_graph(23)
        n = graph.num_vertices
        for p in (0, n // 2, n):
            view = PrefixView(graph, p)
            record = construct_cvs(view, 1, kernel="array")
            assert isinstance(record.nbrs, PrefixAdjacency)
            assert len(record.nbrs) == p
            expected = PrefixView(graph, p).neighbor_lists()
            assert [list(record.nbrs[v]) for v in range(p)] == expected
        with pytest.raises(IndexError):
            _ = record.nbrs[n]


class TestPrefixViewExtend:
    def test_extend_seeds_down_cuts(self):
        graph = random_graph(31)
        n = graph.num_vertices
        small = PrefixView(graph, n // 3)
        for u in range(small.p):
            small.down_cut(u)
        large = small.extend(n)
        fresh = PrefixView(graph, n)
        for u in range(n):
            assert large.down_cut(u) == fresh.down_cut(u)
            assert large.degree(u) == fresh.degree(u)

    def test_extend_rejects_shrink(self):
        graph = random_graph(31)
        with pytest.raises(ValueError):
            PrefixView(graph, 3).extend(2)

    def test_extend_chain(self):
        graph = random_graph(33)
        n = graph.num_vertices
        view = PrefixView(graph, 1)
        for p in range(2, n + 1):
            view = view.extend(p)
            fresh = PrefixView(graph, p)
            assert [view.down_cut(u) for u in range(p)] == [
                fresh.down_cut(u) for u in range(p)
            ]
