"""Concurrency correctness: hammering clients get serial-identical bytes.

The server may coalesce, shard, cache, or reorder internally however it
likes — but every client must receive, for its own query, *exactly* the
lines a serial, cache-free execution produces (volatile header fields
aside: latency and cache provenance legitimately differ).  Sessions on
different connections must advance independently with no cross-talk.
"""

from __future__ import annotations

import asyncio
from typing import List, Tuple

from repro.graph.builder import graph_from_arrays
from repro.server import ReproClient, ReproServer
from repro.service import GraphRegistry, QueryEngine, ServiceShell, TopKQuery


def layered_cliques(num_cliques=8):
    edges = []
    for c in range(num_cliques):
        base = 4 * c
        for i in range(4):
            for j in range(i + 1, 4):
                edges.append((base + i, base + j))
    return graph_from_arrays(4 * num_cliques, edges)


def two_k4s():
    return graph_from_arrays(
        8,
        [
            (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
            (4, 5), (4, 6), (4, 7), (5, 6), (5, 7), (6, 7),
            (3, 4),
        ],
    )


def make_registry():
    registry = GraphRegistry(preload_datasets=False)
    registry.register("cliques", layered_cliques)
    registry.register("two-k4s", two_k4s)
    return registry


def mixed_workload(client_index: int) -> List[Tuple[str, int, int, bool]]:
    """(graph, gamma, k, members) per query — varied per client."""
    graphs = ("cliques", "two-k4s")
    out = []
    for i in range(6):
        graph = graphs[(client_index + i) % 2]
        gamma = (2, 3)[(client_index + i) % 2]
        k = 1 + (client_index + 2 * i) % 5
        members = (client_index + i) % 3 == 0
        out.append((graph, gamma, k, members))
    return out


def payload_lines(lines: List[str]) -> List[str]:
    """Strip the volatile header (elapsed ms, cache source) — keep the
    deterministic community payload."""
    assert lines and not lines[0].startswith("error"), lines
    return lines[1:]


def serial_reference(workload) -> List[List[str]]:
    """What a serial, cache-free engine renders for each query."""
    engine = QueryEngine(make_registry(), cache=None)
    reference = []
    for graph, gamma, k, members in workload:
        result = engine.execute(TopKQuery(graph=graph, gamma=gamma, k=k))
        reference.append(ServiceShell.render_result(result, members)[1:])
    return reference


def test_hammering_clients_match_serial_execution_exactly():
    clients = 12

    async def one_client(host, port, index):
        client = await ReproClient.connect(host, port=port)
        responses = []
        try:
            for graph, gamma, k, members in mixed_workload(index):
                lines = await client.query(
                    graph, k=k, gamma=gamma, members=members
                )
                responses.append(payload_lines(lines))
        finally:
            await client.close()
        return responses

    async def main():
        server = ReproServer(make_registry(), shards=3, batch_window_ms=1.0)
        await server.start(tcp=("127.0.0.1", 0))
        host, port = server.tcp_address
        got = await asyncio.gather(
            *(one_client(host, port, i) for i in range(clients))
        )
        stats = server.scheduler.stats
        await server.stop()
        return got, stats

    got, stats = asyncio.run(main())

    for index, responses in enumerate(got):
        workload = mixed_workload(index)
        assert responses == serial_reference(workload), (
            f"client {index} diverged from serial execution"
        )
    total = sum(len(mixed_workload(i)) for i in range(clients))
    assert stats.queries == total
    # With 12 clients over 4 query families, coalescing must have fired.
    assert stats.batches < stats.queries


def test_interleaved_sessions_have_no_cross_talk():
    clients = 6
    steps = 4

    async def one_client(host, port, index):
        gamma = (2, 3)[index % 2]
        graph = ("cliques", "two-k4s")[index % 2]
        client = await ReproClient.connect(host, port=port)
        try:
            opened = await client.request(f"session open {graph} gamma={gamma}")
            sid = opened[0].split()[1]
            lines: List[str] = []
            for _ in range(steps):
                batch = await client.request(f"session next {sid} 1")
                lines.extend(
                    line for line in batch if line.startswith("top-")
                )
                await asyncio.sleep(0)  # maximise interleaving
            await client.request(f"session close {sid}")
            return lines
        finally:
            await client.close()

    async def main():
        server = ReproServer(make_registry(), shards=2)
        await server.start(tcp=("127.0.0.1", 0))
        host, port = server.tcp_address
        results = await asyncio.gather(
            *(one_client(host, port, i) for i in range(clients))
        )
        await server.stop()
        return results

    results = asyncio.run(main())

    for index, lines in enumerate(results):
        # Every session advanced monotonically: top-1, top-2, ... with
        # strictly decreasing influence — no skipped or repeated ranks
        # (which is exactly what cross-connection leakage would cause).
        ranks = [int(line.split(":")[0].split("-")[1]) for line in lines]
        assert ranks == list(range(1, len(ranks) + 1)), f"client {index}"
        influences = [float(line.split("influence=")[1].split()[0]) for line in lines]
        assert influences == sorted(influences, reverse=True)
        assert len(set(influences)) == len(influences)

    # Clients with the same (graph, gamma) saw the same stream; the two
    # groups saw different streams.
    assert results[0] == results[2] == results[4]
    assert results[1] == results[3] == results[5]
    assert results[0] != results[1]
