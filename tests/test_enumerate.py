"""EnumIC tests: community reconstruction from keys/cvs (Algorithm 3)."""

from __future__ import annotations

import pytest

from repro.core.count import construct_cvs
from repro.core.enumerate import (
    EnumerationState,
    enumerate_progressive,
    enumerate_top_k,
)
from repro.core.reference import reference_communities
from repro.graph.subgraph import PrefixView
from tests.conftest import random_graph


class TestEnumerateTopK:
    def test_requires_nbrs(self, fig3):
        record = construct_cvs(PrefixView.whole(fig3), 3)
        record.nbrs = None
        with pytest.raises(ValueError):
            enumerate_top_k(fig3, record, 1)

    def test_k_larger_than_available(self, fig3):
        record = construct_cvs(PrefixView.whole(fig3), 3)
        communities = enumerate_top_k(fig3, record, 1000)
        assert len(communities) == record.num_communities

    def test_k_none_returns_all(self, fig3):
        record = construct_cvs(PrefixView.whole(fig3), 3)
        communities = enumerate_top_k(fig3, record)
        assert len(communities) == record.num_communities

    def test_decreasing_influence(self, fig3):
        record = construct_cvs(PrefixView.whole(fig3), 3)
        influences = [c.influence for c in enumerate_top_k(fig3, record)]
        assert influences == sorted(influences, reverse=True)

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("gamma", [2, 3])
    def test_members_match_reference(self, seed, gamma):
        g = random_graph(16, 0.3, seed, weights="shuffled")
        record = construct_cvs(PrefixView.whole(g), gamma)
        got = [
            (c.influence, frozenset(c.vertex_ranks))
            for c in enumerate_top_k(g, record)
        ]
        expected = [
            (inf, members)
            for inf, members in reference_communities(g, gamma)
        ]
        assert got == expected

    def test_keynode_is_min_weight_member(self, fig3):
        record = construct_cvs(PrefixView.whole(fig3), 3)
        for community in enumerate_top_k(fig3, record):
            ranks = community.vertex_ranks
            assert max(ranks) == community.keynode  # max rank = min weight
            assert community.influence == fig3.weight(community.keynode)

    def test_children_disjoint(self, fig3):
        record = construct_cvs(PrefixView.whole(fig3), 3)
        for community in enumerate_top_k(fig3, record):
            child_sets = [set(c.vertex_ranks) for c in community.children]
            for i in range(len(child_sets)):
                for j in range(i + 1, len(child_sets)):
                    assert child_sets[i].isdisjoint(child_sets[j])

    def test_num_vertices_matches_materialisation(self, fig3):
        record = construct_cvs(PrefixView.whole(fig3), 3)
        for community in enumerate_top_k(fig3, record):
            assert community.num_vertices == len(set(community.vertex_ranks))


class TestCommunityObject:
    def test_edges_and_min_degree(self, fig3):
        record = construct_cvs(PrefixView.whole(fig3), 3)
        for community in enumerate_top_k(fig3, record):
            assert community.min_degree() >= 3
            assert community.num_edges() == len(community.edges())

    def test_contains(self, fig3):
        record = construct_cvs(PrefixView.whole(fig3), 3)
        top = enumerate_top_k(fig3, record, 1)[0]
        assert top.keynode in top
        assert (fig3.rank_of("v14")) not in top

    def test_ordering(self, fig3):
        record = construct_cvs(PrefixView.whole(fig3), 3)
        communities = enumerate_top_k(fig3, record, 2)
        assert communities[1] < communities[0]

    def test_len(self, fig3):
        record = construct_cvs(PrefixView.whole(fig3), 3)
        top = enumerate_top_k(fig3, record, 1)[0]
        assert len(top) == 4


class TestProgressiveEnumeration:
    def test_shared_state_links_across_rounds(self, fig3):
        state = EnumerationState()
        round1 = construct_cvs(PrefixView(fig3, 7), 3)
        round2 = construct_cvs(PrefixView(fig3, 13), 3, stop_rank=7)
        first = list(enumerate_progressive(fig3, round1, state))
        assert len(first) == 1
        second = list(enumerate_progressive(fig3, round2, state))
        assert len(second) == 3
        by_key = {c.keynode_label: c for c in first + second}
        # v13's community (round 2) must absorb v11's (round 1).
        assert [c.keynode_label for c in by_key["v13"].children] == ["v11"]

    def test_progressive_equals_batch(self):
        g = random_graph(24, 0.3, 13, weights="shuffled")
        gamma = 2
        state = EnumerationState()
        out = []
        for p_prev, p in ((0, 8), (8, 16), (16, 24)):
            record = construct_cvs(PrefixView(g, p), gamma, stop_rank=p_prev)
            out.extend(enumerate_progressive(g, record, state))
        batch = enumerate_top_k(
            g, construct_cvs(PrefixView(g, 24), gamma)
        )
        got = sorted(
            (c.influence, frozenset(c.vertex_ranks)) for c in out
        )
        expected = sorted(
            (c.influence, frozenset(c.vertex_ranks)) for c in batch
        )
        assert got == expected
