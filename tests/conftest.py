"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random
from typing import List, Tuple

import pytest

from repro.graph.builder import graph_from_arrays
from repro.graph.weighted_graph import WeightedGraph
from repro.workloads.paper_examples import figure1_graph, figure3_graph


def random_graph(
    n: int, edge_prob: float, seed: int, weights: str = "identity"
) -> WeightedGraph:
    """A deterministic random graph for cross-validation tests."""
    rng = random.Random(seed)
    edges: List[Tuple[int, int]] = []
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < edge_prob:
                edges.append((u, v))
    if weights == "shuffled":
        values = list(range(1, n + 1))
        rng.shuffle(values)
        weight_list = [float(w) for w in values]
    else:
        weight_list = None  # identity: vertex 0 is heaviest
    return graph_from_arrays(n, edges, weights=weight_list)


@pytest.fixture(scope="session")
def fig1() -> WeightedGraph:
    """The paper's Figure-1 example graph."""
    return figure1_graph()


@pytest.fixture(scope="session")
def fig3() -> WeightedGraph:
    """The paper's Figure-3 example graph."""
    return figure3_graph()


@pytest.fixture(scope="session")
def email_graph() -> WeightedGraph:
    """The smallest Table-1 stand-in (for integration tests)."""
    from repro.workloads.datasets import load_dataset

    return load_dataset("email")


@pytest.fixture()
def triangle() -> WeightedGraph:
    """K3 with weights 3 > 2 > 1."""
    return graph_from_arrays(3, [(0, 1), (0, 2), (1, 2)])


@pytest.fixture()
def two_cliques() -> WeightedGraph:
    """Two disjoint K4s: ranks 0-3 (heavy) and 4-7 (light)."""
    edges = []
    for base in (0, 4):
        for i in range(4):
            for j in range(i + 1, 4):
                edges.append((base + i, base + j))
    return graph_from_arrays(8, edges)
