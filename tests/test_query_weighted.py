"""Query-dependent weights (the paper's future-work extension)."""

from __future__ import annotations

import pytest

from repro.core.query_weighted import (
    closeness_weights,
    reweight,
    top_k_closest_communities,
)
from repro.errors import QueryParameterError, UnknownVertexError
from repro.graph.builder import graph_from_arrays


@pytest.fixture()
def barbell():
    # Two triangles joined by a path: a "near" and a "far" community.
    return graph_from_arrays(
        8,
        [(0, 1), (0, 2), (1, 2),            # near triangle
         (2, 3), (3, 4),                     # path
         (4, 5), (4, 6), (5, 6), (5, 7), (6, 7), (4, 7)],  # far K4-ish
    )


class TestClosenessWeights:
    def test_query_vertex_weight_is_highest(self, barbell):
        weights = closeness_weights(barbell, [0])
        assert weights[0] == max(weights)
        assert weights[0] > 1.0  # 1 + tie epsilon

    def test_weights_decrease_with_distance(self, barbell):
        weights = closeness_weights(barbell, [0])
        # dist: 0 ->0; 1,2 ->1; 3 ->2; 4 ->3; 5,6,7 ->4
        assert weights[1] > weights[3] > weights[4] > weights[5]

    def test_multi_source(self, barbell):
        weights = closeness_weights(barbell, [0, 7])
        assert weights[0] > weights[3]
        assert weights[7] > weights[3]

    def test_distinct(self, barbell):
        weights = closeness_weights(barbell, [0])
        assert len(set(weights)) == len(weights)

    def test_unreachable_gets_floor(self):
        g = graph_from_arrays(4, [(0, 1), (2, 3)])
        weights = closeness_weights(g, [0])
        assert weights[2] < weights[1]
        assert weights[3] < 0.01

    def test_unknown_query_vertex(self, barbell):
        with pytest.raises(UnknownVertexError):
            closeness_weights(barbell, ["ghost"])

    def test_empty_query(self, barbell):
        with pytest.raises(QueryParameterError):
            closeness_weights(barbell, [])


class TestReweight:
    def test_preserves_structure(self, barbell):
        new = reweight(barbell, closeness_weights(barbell, [0]))
        assert new.num_vertices == barbell.num_vertices
        assert new.num_edges == barbell.num_edges
        assert sorted(new.edges_as_labels()) == sorted(
            barbell.edges_as_labels()
        )

    def test_rank_order_follows_new_weights(self, barbell):
        new = reweight(barbell, closeness_weights(barbell, [7]))
        assert new.rank_of(7) == 0  # the query vertex becomes rank 0

    def test_length_mismatch(self, barbell):
        with pytest.raises(QueryParameterError):
            reweight(barbell, [1.0])


class TestClosestCommunities:
    def test_top1_is_the_near_community(self, barbell):
        result = top_k_closest_communities(barbell, [0], k=1, gamma=2)
        assert sorted(result.communities[0].vertices) == [0, 1, 2]

    def test_query_from_other_side(self, barbell):
        result = top_k_closest_communities(barbell, [7], k=1, gamma=3)
        assert sorted(result.communities[0].vertices) == [4, 5, 6, 7]

    def test_decreasing_closeness(self, barbell):
        result = top_k_closest_communities(barbell, [0], k=3, gamma=2)
        influences = result.influences
        assert influences == sorted(influences, reverse=True)

    def test_k_validation(self, barbell):
        with pytest.raises(QueryParameterError):
            top_k_closest_communities(barbell, [0], k=0, gamma=2)

    def test_different_queries_different_answers(self, barbell):
        """The whole point: no index could serve both weight vectors."""
        near = top_k_closest_communities(barbell, [0], k=1, gamma=2)
        far = top_k_closest_communities(barbell, [7], k=1, gamma=2)
        assert set(near.communities[0].vertices) != set(
            far.communities[0].vertices
        )

    def test_communities_are_cohesive(self, barbell):
        result = top_k_closest_communities(barbell, [0], k=2, gamma=2)
        for community in result.communities:
            assert community.min_degree() >= 2
