"""End-to-end tracing through the serving tiers (thread and cluster).

The PR-6 acceptance shape: one query through the full server yields one
stitched trace — transport -> scheduler -> (cluster_dispatch -> worker,
process backend) -> engine with kernel phases — retrievable over the
shell ``trace`` command and the HTTP exporter alike.
"""

from __future__ import annotations

import asyncio
import json
import urllib.request

import pytest

from repro.api import QuerySpec
from repro.cluster import ClusterPool
from repro.graph.builder import graph_from_arrays
from repro.obs.trace import Tracer
from repro.server import BatchScheduler, ReproServer, ShardPool
from repro.server.client import ReproClient
from repro.service import GraphRegistry, QueryEngine, ResultCache

needs_mp = pytest.mark.skipif(
    not ClusterPool.available(), reason="multiprocessing unavailable"
)


def layered_cliques(num_cliques=6):
    edges = []
    for c in range(num_cliques):
        base = 4 * c
        for i in range(4):
            for j in range(i + 1, 4):
                edges.append((base + i, base + j))
    return graph_from_arrays(4 * num_cliques, edges)


@pytest.fixture()
def registry():
    registry = GraphRegistry(preload_datasets=False)
    registry.register("cliques", layered_cliques)
    return registry


def _http_json(base: str, path: str):
    with urllib.request.urlopen(base + path, timeout=10.0) as response:
        return json.loads(response.read().decode("utf-8"))


class TestThreadBackendEndToEnd:
    def test_stitched_trace_via_shell_and_http(self, registry):
        async def main():
            server = ReproServer(
                registry=registry,
                backend="thread",
                trace_sample=1.0,
                metrics_port=0,
            )
            await server.start(tcp=("127.0.0.1", 0))
            try:
                host, port = server.tcp_address
                mhost, mport = server.metrics_address
                base = f"http://{mhost}:{mport}"
                client = await ReproClient.connect(host, port=port)
                try:
                    result = await client.execute(
                        QuerySpec(graph="cliques", k=3, gamma=3)
                    )
                    assert result.communities

                    [trace] = _http_json(base, "/traces?limit=1")["traces"]
                    names = {s["name"] for s in trace["spans"]}
                    assert {"transport", "scheduler", "engine"} <= names
                    engine = next(
                        s for s in trace["spans"] if s["name"] == "engine"
                    )
                    assert len(engine.get("phases", {})) >= 3

                    listing = await client.request("trace limit=5")
                    assert any(
                        trace["trace_id"] in line for line in listing
                    )
                    rendered = await client.request(
                        f"trace {trace['trace_id']}"
                    )
                    assert any("scheduler" in line for line in rendered)
                finally:
                    await client.close()
            finally:
                await server.stop()

        asyncio.run(main())

    def test_sampled_out_queries_leave_no_trace(self, registry):
        async def main():
            server = ReproServer(
                registry=registry, backend="thread", trace_sample=0.0
            )
            await server.start(tcp=("127.0.0.1", 0))
            try:
                host, port = server.tcp_address
                client = await ReproClient.connect(host, port=port)
                try:
                    await client.execute(
                        QuerySpec(graph="cliques", k=3, gamma=3)
                    )
                finally:
                    await client.close()
                counters = server.tracer.store.counters()
                assert counters["traces_recorded"] == 0
            finally:
                await server.stop()

        asyncio.run(main())


class TestCoalescedTraces:
    def test_followers_record_coalesced_span(self, registry):
        async def main():
            tracer = Tracer(sample=1.0)
            engine = QueryEngine(
                registry, cache=ResultCache(), tracer=tracer
            )
            pool = ShardPool(2)
            scheduler = BatchScheduler(
                engine, pool, window_s=0.05, tracer=tracer
            )
            spans = [
                tracer.maybe_start("transport"),
                tracer.maybe_start("transport"),
            ]
            try:
                queries = [
                    QuerySpec(graph="cliques", gamma=3, k=k) for k in (5, 2)
                ]
                results = await asyncio.gather(
                    *(
                        scheduler.submit(query, span=span)
                        for query, span in zip(queries, spans)
                    )
                )
            finally:
                pool.shutdown()
            traces = [tracer.end(span) for span in spans]
            assert sorted(r.source for r in results) == [
                "coalesced", "cold"
            ]
            by_root = {
                trace["trace_id"]: {s["name"] for s in trace["spans"]}
                for trace in traces
            }
            all_names = set().union(*by_root.values())
            assert "scheduler" in all_names
            assert "coalesced" in all_names
            # The follower's coalesced span points at the leader trace.
            follower_span = next(
                s
                for trace in traces
                for s in trace["spans"]
                if s["name"] == "coalesced"
            )
            assert follower_span["tags"]["leader"] in by_root

        asyncio.run(main())


@needs_mp
class TestClusterBackendEndToEnd:
    def test_trace_stitches_across_worker_process(self, registry):
        async def main():
            server = ReproServer(
                registry=registry,
                workers=2,
                trace_sample=1.0,
                metrics_port=0,
            )
            await server.start(tcp=("127.0.0.1", 0))
            try:
                assert getattr(server.shards, "backend", None) == "process"
                host, port = server.tcp_address
                mhost, mport = server.metrics_address
                base = f"http://{mhost}:{mport}"
                client = await ReproClient.connect(host, port=port)
                try:
                    await client.execute(
                        QuerySpec(graph="cliques", k=3, gamma=3)
                    )
                    [trace] = _http_json(base, "/traces?limit=1")["traces"]
                    names = {s["name"] for s in trace["spans"]}
                    assert {
                        "transport",
                        "scheduler",
                        "cluster_dispatch",
                        "worker",
                        "engine",
                    } <= names
                    worker = next(
                        s for s in trace["spans"] if s["name"] == "worker"
                    )
                    dispatch = next(
                        s
                        for s in trace["spans"]
                        if s["name"] == "cluster_dispatch"
                    )
                    # The remote span hangs off the dispatch span: one
                    # connected tree across the process edge.
                    assert worker["parent_id"] == dispatch["span_id"]
                    engine = next(
                        s for s in trace["spans"] if s["name"] == "engine"
                    )
                    assert len(engine.get("phases", {})) >= 3
                finally:
                    await client.close()
            finally:
                await server.stop()

        asyncio.run(main())
