"""End-to-end tracing through the serving tiers (thread and cluster).

The PR-6 acceptance shape: one query through the full server yields one
stitched trace — transport -> scheduler -> (cluster_dispatch -> worker,
process backend) -> engine with kernel phases — retrievable over the
shell ``trace`` command and the HTTP exporter alike.
"""

from __future__ import annotations

import asyncio
import json
import time
import urllib.error
import urllib.request

import pytest

from repro.api import QuerySpec
from repro.cluster import ClusterPool
from repro.graph.builder import graph_from_arrays
from repro.obs.trace import Tracer
from repro.server import BatchScheduler, ReproServer, ShardPool
from repro.server.client import ReproClient
from repro.service import GraphRegistry, QueryEngine, ResultCache

needs_mp = pytest.mark.skipif(
    not ClusterPool.available(), reason="multiprocessing unavailable"
)


def layered_cliques(num_cliques=6):
    edges = []
    for c in range(num_cliques):
        base = 4 * c
        for i in range(4):
            for j in range(i + 1, 4):
                edges.append((base + i, base + j))
    return graph_from_arrays(4 * num_cliques, edges)


@pytest.fixture()
def registry():
    registry = GraphRegistry(preload_datasets=False)
    registry.register("cliques", layered_cliques)
    return registry


def _http_json(base: str, path: str):
    with urllib.request.urlopen(base + path, timeout=10.0) as response:
        return json.loads(response.read().decode("utf-8"))


def _http_get(base: str, path: str):
    """(status, body) — non-2xx statuses returned, not raised."""
    try:
        with urllib.request.urlopen(base + path, timeout=10.0) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8")


class TestThreadBackendEndToEnd:
    def test_stitched_trace_via_shell_and_http(self, registry):
        async def main():
            server = ReproServer(
                registry=registry,
                backend="thread",
                trace_sample=1.0,
                metrics_port=0,
            )
            await server.start(tcp=("127.0.0.1", 0))
            try:
                host, port = server.tcp_address
                mhost, mport = server.metrics_address
                base = f"http://{mhost}:{mport}"
                client = await ReproClient.connect(host, port=port)
                try:
                    result = await client.execute(
                        QuerySpec(graph="cliques", k=3, gamma=3)
                    )
                    assert result.communities

                    [trace] = _http_json(base, "/traces?limit=1")["traces"]
                    names = {s["name"] for s in trace["spans"]}
                    assert {"transport", "scheduler", "engine"} <= names
                    engine = next(
                        s for s in trace["spans"] if s["name"] == "engine"
                    )
                    assert len(engine.get("phases", {})) >= 3

                    listing = await client.request("trace limit=5")
                    assert any(
                        trace["trace_id"] in line for line in listing
                    )
                    rendered = await client.request(
                        f"trace {trace['trace_id']}"
                    )
                    assert any("scheduler" in line for line in rendered)
                finally:
                    await client.close()
            finally:
                await server.stop()

        asyncio.run(main())

    def test_sampled_out_queries_leave_no_trace(self, registry):
        async def main():
            server = ReproServer(
                registry=registry, backend="thread", trace_sample=0.0
            )
            await server.start(tcp=("127.0.0.1", 0))
            try:
                host, port = server.tcp_address
                client = await ReproClient.connect(host, port=port)
                try:
                    await client.execute(
                        QuerySpec(graph="cliques", k=3, gamma=3)
                    )
                finally:
                    await client.close()
                counters = server.tracer.store.counters()
                assert counters["traces_recorded"] == 0
            finally:
                await server.stop()

        asyncio.run(main())


class TestCoalescedTraces:
    def test_followers_record_coalesced_span(self, registry):
        async def main():
            tracer = Tracer(sample=1.0)
            engine = QueryEngine(
                registry, cache=ResultCache(), tracer=tracer
            )
            pool = ShardPool(2)
            scheduler = BatchScheduler(
                engine, pool, window_s=0.05, tracer=tracer
            )
            spans = [
                tracer.maybe_start("transport"),
                tracer.maybe_start("transport"),
            ]
            try:
                queries = [
                    QuerySpec(graph="cliques", gamma=3, k=k) for k in (5, 2)
                ]
                results = await asyncio.gather(
                    *(
                        scheduler.submit(query, span=span)
                        for query, span in zip(queries, spans)
                    )
                )
            finally:
                pool.shutdown()
            traces = [tracer.end(span) for span in spans]
            assert sorted(r.source for r in results) == [
                "coalesced", "cold"
            ]
            by_root = {
                trace["trace_id"]: {s["name"] for s in trace["spans"]}
                for trace in traces
            }
            all_names = set().union(*by_root.values())
            assert "scheduler" in all_names
            assert "coalesced" in all_names
            # The follower's coalesced span points at the leader trace.
            follower_span = next(
                s
                for trace in traces
                for s in trace["spans"]
                if s["name"] == "coalesced"
            )
            assert follower_span["tags"]["leader"] in by_root

        asyncio.run(main())


class TestObservabilityEndpoints:
    """The PR-7 surface over a live thread-backend server."""

    def test_dashboard_history_readyz_profile(self, registry):
        async def main():
            server = ReproServer(
                registry=registry,
                backend="thread",
                trace_sample=1.0,
                metrics_port=0,
                slo="p95_ms=60000,err_rate=0.9,window_s=30",
                history_interval=0.1,
            )
            await server.start(tcp=("127.0.0.1", 0))
            try:
                host, port = server.tcp_address
                mhost, mport = server.metrics_address
                base = f"http://{mhost}:{mport}"
                client = await ReproClient.connect(host, port=port)
                try:
                    for k in (2, 3, 4):
                        await client.execute(
                            QuerySpec(graph="cliques", k=k, gamma=3)
                        )
                    # Let the collector take a couple of post-traffic
                    # ticks so rates exist.
                    deadline = time.time() + 5.0
                    while (
                        len(server.history.ticks()) < 3
                        and time.time() < deadline
                    ):
                        await asyncio.sleep(0.05)

                    # liveness is bare; readiness is a judgement
                    status, body = _http_get(base, "/healthz")
                    assert (status, body) == (200, "ok\n")
                    status, body = _http_get(base, "/readyz")
                    assert status == 200
                    ready = json.loads(body)
                    assert ready["ready"] and ready["reasons"] == []
                    assert ready["slo"]["ok"]

                    doc = _http_json(base, "/history.json?window=60")
                    assert doc["points"], "derived points expected"
                    point = doc["points"][-1]
                    assert point["qps"] >= 0.0
                    assert doc["slo"]["window_s"] == 30.0
                    assert doc["breach_count"] == 0

                    status, html = _http_get(base, "/dashboard")
                    assert status == 200
                    assert "<title>repro dashboard</title>" in html
                    assert 'id="queues"' in html
                    assert 'id="slo"' in html
                    assert "/traces/" in html  # exemplar links
                    assert "<script" not in html.lower()
                    assert "https://" not in html

                    # the Prometheus exposition grew the SLO series
                    status, text = _http_get(base, "/metrics")
                    assert "repro_slo_ok{" in text
                    assert "repro_slo_breaches_total 0" in text
                    assert "repro_latency_overall_ms{" in text

                    status, report = _http_get(
                        base, "/profile?seconds=0.05"
                    )
                    assert status == 200
                    assert report.startswith("profile:")
                    status, body = _http_get(base, "/profile?seconds=-1")
                    assert status == 400
                finally:
                    await client.close()
            finally:
                await server.stop()
            assert not server.history.running  # stop() stops collecting

        asyncio.run(main())

    def test_slo_breach_flips_readyz_and_recovers(self, registry):
        async def main():
            server = ReproServer(
                registry=registry,
                backend="thread",
                metrics_port=0,
                slo="err_rate=0.5,window_s=2",
                history_interval=0.2,
            )
            await server.start(tcp=("127.0.0.1", 0))
            try:
                host, port = server.tcp_address
                mhost, mport = server.metrics_address
                base = f"http://{mhost}:{mport}"
                client = await ReproClient.connect(host, port=port)
                try:
                    # Every request errors: unknown graph.
                    for _ in range(4):
                        lines = await client.request(
                            "query no-such-graph k=2"
                        )
                        assert lines[0].startswith("error:")
                    deadline = time.time() + 10.0
                    status = None
                    while time.time() < deadline:
                        status, body = _http_get(base, "/readyz")
                        if status == 503:
                            break
                        await asyncio.sleep(0.1)
                    assert status == 503
                    doc = json.loads(body)
                    assert any(
                        "slo breach" in reason for reason in doc["reasons"]
                    )
                    assert server.history.breach_count >= 1

                    # Breach events surface on the dashboard too.
                    _, html = _http_get(base, "/dashboard")
                    assert "✗ breach" in html

                    # Good traffic + the 2s window sliding past the
                    # failures recovers readiness end to end.
                    deadline = time.time() + 15.0
                    while time.time() < deadline:
                        await client.execute(
                            QuerySpec(graph="cliques", k=2, gamma=3)
                        )
                        status, body = _http_get(base, "/readyz")
                        if status == 200:
                            break
                        await asyncio.sleep(0.2)
                    assert status == 200
                    events = [
                        e["event"] for e in server.history.breaches()
                    ]
                    assert events[0] == "breach"
                    assert "recovered" in events
                finally:
                    await client.close()
            finally:
                await server.stop()

        asyncio.run(main())

    def test_profile_busy_returns_409(self, registry):
        async def main():
            server = ReproServer(
                registry=registry,
                backend="thread",
                metrics_port=0,
            )
            await server.start(tcp=("127.0.0.1", 0))
            try:
                mhost, mport = server.metrics_address
                base = f"http://{mhost}:{mport}"
                loop = asyncio.get_running_loop()
                first = loop.run_in_executor(
                    None, _http_get, base, "/profile?seconds=0.8"
                )
                await asyncio.sleep(0.2)  # let the first capture arm
                status, body = _http_get(base, "/profile?seconds=0.1")
                assert status == 409
                assert "already running" in json.loads(body)["error"]
                status, report = await first
                assert status == 200
                assert report.startswith("profile:")
            finally:
                await server.stop()

        asyncio.run(main())

    def test_history_disabled_404s(self, registry):
        async def main():
            # metrics_port alone enables observability, which builds a
            # history; to get a server WITHOUT one, wire the exporter
            # directly.
            from repro.obs.export import MetricsServer
            from repro.service import ServiceMetrics

            exporter = MetricsServer(ServiceMetrics(), port=0)
            mhost, mport = exporter.start()
            try:
                base = f"http://{mhost}:{mport}"
                status, body = _http_get(base, "/history.json")
                assert status == 404
                assert "disabled" in json.loads(body)["error"]
                status, body = _http_get(base, "/profile?seconds=0.1")
                assert status == 404
                # readyz without a callback defaults to ready
                status, body = _http_get(base, "/readyz")
                assert status == 200
                assert json.loads(body)["ready"] is True
                # the dashboard still renders from the bare snapshot
                status, html = _http_get(base, "/dashboard")
                assert status == 200
                assert "<title>repro dashboard</title>" in html
            finally:
                exporter.stop()

        asyncio.run(main())


@needs_mp
class TestClusterReadiness:
    def test_dead_worker_flips_readyz_until_restarted(self, registry):
        async def main():
            server = ReproServer(
                registry=registry,
                workers=2,
                metrics_port=0,
                history_interval=0.2,
            )
            await server.start(tcp=("127.0.0.1", 0))
            try:
                assert getattr(server.shards, "backend", None) == "process"
                host, port = server.tcp_address
                mhost, mport = server.metrics_address
                base = f"http://{mhost}:{mport}"
                client = await ReproClient.connect(host, port=port)
                try:
                    await client.execute(
                        QuerySpec(graph="cliques", k=2, gamma=3)
                    )
                    status, _ = _http_get(base, "/readyz")
                    assert status == 200

                    victim = server.shards._workers[0]
                    victim.process.kill()
                    victim.process.join()
                    status, body = _http_get(base, "/readyz")
                    assert status == 503
                    doc = json.loads(body)
                    assert doc["workers"]["worker:0"] is False
                    assert any(
                        "dead workers" in reason
                        for reason in doc["reasons"]
                    )
                    # /healthz stays green: the process itself is alive.
                    status, body = _http_get(base, "/healthz")
                    assert (status, body) == (200, "ok\n")

                    # health_check() is the mutating recovery path.
                    restarted = await asyncio.get_running_loop(
                    ).run_in_executor(None, server.shards.health_check)
                    assert "worker:0" in restarted["restarted"]
                    status, body = _http_get(base, "/readyz")
                    assert status == 200
                    assert json.loads(body)["workers"]["worker:0"] is True
                finally:
                    await client.close()
            finally:
                await server.stop()

        asyncio.run(main())


@needs_mp
class TestClusterBackendEndToEnd:
    def test_trace_stitches_across_worker_process(self, registry):
        async def main():
            server = ReproServer(
                registry=registry,
                workers=2,
                trace_sample=1.0,
                metrics_port=0,
            )
            await server.start(tcp=("127.0.0.1", 0))
            try:
                assert getattr(server.shards, "backend", None) == "process"
                host, port = server.tcp_address
                mhost, mport = server.metrics_address
                base = f"http://{mhost}:{mport}"
                client = await ReproClient.connect(host, port=port)
                try:
                    await client.execute(
                        QuerySpec(graph="cliques", k=3, gamma=3)
                    )
                    [trace] = _http_json(base, "/traces?limit=1")["traces"]
                    names = {s["name"] for s in trace["spans"]}
                    assert {
                        "transport",
                        "scheduler",
                        "cluster_dispatch",
                        "worker",
                        "engine",
                    } <= names
                    worker = next(
                        s for s in trace["spans"] if s["name"] == "worker"
                    )
                    dispatch = next(
                        s
                        for s in trace["spans"]
                        if s["name"] == "cluster_dispatch"
                    )
                    # The remote span hangs off the dispatch span: one
                    # connected tree across the process edge.
                    assert worker["parent_id"] == dispatch["span_id"]
                    engine = next(
                        s for s in trace["spans"] if s["name"] == "engine"
                    )
                    assert len(engine.get("phases", {})) >= 3
                finally:
                    await client.close()
            finally:
                await server.stop()

        asyncio.run(main())
