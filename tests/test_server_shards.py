"""ShardPool: routing determinism, replication, and executor isolation."""

from __future__ import annotations

import asyncio
import threading
import zlib

import pytest

from repro.server import ShardPool


def test_route_is_deterministic_per_graph():
    pool = ShardPool(4)
    try:
        assert pool.route("wiki") == pool.route("wiki") == pool.home_shard("wiki")
        assert pool.home_shard("wiki") == zlib.crc32(b"wiki") % 4
    finally:
        pool.shutdown()


def test_different_graphs_spread_over_shards():
    pool = ShardPool(8)
    try:
        names = [f"graph-{i}" for i in range(64)]
        shards = {pool.route(name) for name in names}
        assert len(shards) > 1
    finally:
        pool.shutdown()


def test_replication_round_robins_over_consecutive_shards():
    pool = ShardPool(4, replication={"hot": 3})
    try:
        base = pool.home_shard("hot")
        expected = [(base + i) % 4 for i in (0, 1, 2, 0, 1, 2)]
        assert [pool.route("hot") for _ in range(6)] == expected
        # Unreplicated graphs stay pinned.
        assert {pool.route("cold") for _ in range(6)} == {pool.home_shard("cold")}
    finally:
        pool.shutdown()


def test_replicate_validates_copies():
    pool = ShardPool(2)
    try:
        with pytest.raises(ValueError):
            pool.replicate("g", 0)
        with pytest.raises(ValueError):
            pool.replicate("g", 3)
    finally:
        pool.shutdown()


def test_num_shards_validated():
    with pytest.raises(ValueError):
        ShardPool(0)


def test_run_executes_on_the_routed_shard_thread():
    async def main():
        pool = ShardPool(3)
        try:
            index = pool.home_shard("email")
            name = await pool.run(
                "email", lambda: threading.current_thread().name
            )
            assert f"repro-shard-{index}" in name
            assert pool.depths() == [0, 0, 0]
        finally:
            pool.shutdown()

    asyncio.run(main())


def test_run_propagates_exceptions_and_decrements_depth():
    async def main():
        pool = ShardPool(1)
        try:
            def boom():
                raise RuntimeError("kaput")

            with pytest.raises(RuntimeError, match="kaput"):
                await pool.run("email", boom)
            assert pool.depths() == [0]
        finally:
            pool.shutdown()

    asyncio.run(main())


def test_run_after_shutdown_refuses():
    async def main():
        pool = ShardPool(1)
        pool.shutdown()
        with pytest.raises(RuntimeError):
            await pool.run("email", lambda: 1)

    asyncio.run(main())


def test_depth_tracks_inflight_work():
    async def main():
        pool = ShardPool(2)
        try:
            release = threading.Event()
            index = pool.home_shard("slow")

            async def held():
                return await pool.run("slow", release.wait)

            task = asyncio.ensure_future(held())
            await asyncio.sleep(0.05)
            assert pool.depths()[index] == 1
            release.set()
            assert await task is True
            assert pool.depths() == [0, 0]
        finally:
            pool.shutdown()

    asyncio.run(main())
