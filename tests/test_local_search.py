"""LocalSearch (Algorithm 1) tests: correctness, growth, parameters."""

from __future__ import annotations

import pytest

from repro import LocalSearch, top_k_influential_communities
from repro.core.reference import reference_top_k
from repro.errors import QueryParameterError
from tests.conftest import random_graph


def as_pairs(graph, result):
    return [
        (c.influence, frozenset(c.vertex_ranks)) for c in result.communities
    ]


class TestParameterValidation:
    def test_bad_gamma(self, fig3):
        with pytest.raises(QueryParameterError):
            LocalSearch(fig3, gamma=0)

    def test_bad_delta(self, fig3):
        with pytest.raises(QueryParameterError):
            LocalSearch(fig3, gamma=2, delta=1.0)

    def test_bad_growth(self, fig3):
        with pytest.raises(QueryParameterError):
            LocalSearch(fig3, gamma=2, growth="sideways")

    def test_bad_counting(self, fig3):
        with pytest.raises(QueryParameterError):
            LocalSearch(fig3, gamma=2, counting="magic")

    def test_bad_k(self, fig3):
        with pytest.raises(QueryParameterError):
            LocalSearch(fig3, gamma=2).search(0)


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("gamma", [1, 2, 3])
    @pytest.mark.parametrize("k", [1, 3, 7])
    def test_matches_reference(self, seed, gamma, k):
        g = random_graph(18, 0.3, seed, weights="shuffled")
        result = top_k_influential_communities(g, k=k, gamma=gamma)
        expected = reference_top_k(g, k, gamma)
        assert as_pairs(g, result) == expected

    def test_fewer_than_k_available(self, two_cliques):
        result = top_k_influential_communities(two_cliques, k=10, gamma=3)
        assert len(result.communities) == 2

    def test_no_communities_at_all(self, two_cliques):
        result = top_k_influential_communities(two_cliques, k=3, gamma=4)
        assert result.communities == []

    def test_result_iterable_and_sized(self, fig3):
        result = top_k_influential_communities(fig3, k=2, gamma=3)
        assert len(result) == 2
        assert [c.influence for c in result] == result.influences


class TestGrowthBehaviour:
    @pytest.mark.parametrize("delta", [1.5, 2.0, 3.0, 8.0, 64.0])
    def test_delta_does_not_change_answer(self, fig3, delta):
        baseline = top_k_influential_communities(fig3, k=4, gamma=3)
        result = LocalSearch(fig3, gamma=3, delta=delta).search(4)
        assert as_pairs(fig3, result) == as_pairs(fig3, baseline)

    def test_linear_growth_same_answer_more_rounds(self):
        g = random_graph(40, 0.15, 3, weights="shuffled")
        exponential = LocalSearch(g, gamma=2).search(5)
        linear = LocalSearch(
            g, gamma=2, growth="linear", linear_increment=4
        ).search(5)
        assert as_pairs(g, linear) == as_pairs(g, exponential)
        assert linear.stats.rounds >= exponential.stats.rounds

    def test_prefix_sizes_grow_geometrically(self):
        g = random_graph(60, 0.08, 4, weights="shuffled")
        result = LocalSearch(g, gamma=2, delta=2.0).search(12)
        sizes = result.stats.prefix_sizes
        for smaller, larger in zip(sizes, sizes[1:-1]):
            # Every intermediate round at least doubles (the last round
            # may be clipped by the whole graph).
            assert larger >= 2 * smaller

    def test_stops_as_soon_as_k_found(self, fig3):
        """Every round except the last must have been insufficient."""
        result = LocalSearch(fig3, gamma=3).search(1)
        assert all(c < 1 for c in result.stats.counts[:-1])
        assert result.stats.counts[-1] >= 1


class TestOnlineAllCounting:
    """The LocalSearch-OA variant of Eval-III."""

    @pytest.mark.parametrize("seed", range(4))
    def test_same_answers_as_countic(self, seed):
        g = random_graph(20, 0.3, seed, weights="shuffled")
        fast = LocalSearch(g, gamma=2).search(4)
        slow = LocalSearch(g, gamma=2, counting="onlineall").search(4)
        assert as_pairs(g, slow) == as_pairs(g, fast)


class TestStats:
    def test_accessed_fraction(self, email_graph):
        result = LocalSearch(email_graph, gamma=10).search(10)
        frac = result.stats.accessed_fraction
        assert 0 < frac <= 1
        # Locality: the accessed subgraph is a small part of the graph.
        assert frac < 0.5

    def test_total_work_at_least_accessed(self, fig3):
        result = LocalSearch(fig3, gamma=3).search(4)
        assert result.stats.total_work >= result.stats.accessed_size

    def test_elapsed_recorded(self, fig3):
        result = LocalSearch(fig3, gamma=3).search(4)
        assert result.stats.elapsed_seconds > 0

    def test_instance_optimality_witness(self):
        """The final prefix is within 2*delta of the smallest sufficient
        prefix size (Lemma 3.8), measured empirically."""
        g = random_graph(60, 0.12, 9, weights="shuffled")
        k, gamma, delta = 6, 2, 2.0
        result = LocalSearch(g, gamma=gamma, delta=delta).search(k)
        # Find tau* = smallest prefix with >= k communities.
        from repro.core.count import count_communities
        from repro.graph.subgraph import PrefixView

        p_star = None
        for p in range(1, g.num_vertices + 1):
            if count_communities(PrefixView(g, p), gamma) >= k:
                p_star = p
                break
        if p_star is None:
            pytest.skip("graph has fewer than k communities")
        size_star = g.prefix_size(p_star)
        assert result.stats.accessed_size <= 2 * delta * size_star + 1
