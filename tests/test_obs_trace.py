"""repro.obs.trace — spans, sampling, stores, stitching, engine hooks."""

from __future__ import annotations

import pytest

from repro.api import QuerySpec
from repro.graph.builder import graph_from_arrays
from repro.obs.trace import (
    NO_TRACE,
    Span,
    TraceStore,
    Tracer,
    current_span,
    format_trace,
    format_trace_line,
    record_phase,
    use_span,
)
from repro.service import GraphRegistry, QueryEngine, ResultCache


def two_k4s():
    return graph_from_arrays(
        8,
        [
            (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
            (4, 5), (4, 6), (4, 7), (5, 6), (5, 7), (6, 7),
            (3, 4),
        ],
    )


@pytest.fixture()
def registry():
    registry = GraphRegistry(preload_datasets=False)
    registry.register("g", two_k4s)
    return registry


class TestSampling:
    def test_full_sampling_traces_every_query(self):
        tracer = Tracer(sample=1.0)
        for _ in range(5):
            span = tracer.maybe_start("query")
            assert span is not None
            tracer.end(span)
        assert tracer.store.counters()["traces_recorded"] == 5

    def test_first_query_always_traced(self):
        # The tick counter starts at zero, so even a 1-in-50 sampler
        # mints a root for the very first query.
        tracer = Tracer(sample=0.02)
        assert tracer.maybe_start("query") is not None

    def test_period_sampling(self):
        tracer = Tracer(sample=0.5)
        minted = [
            tracer.maybe_start("query") is not None for _ in range(10)
        ]
        assert minted == [True, False] * 5

    def test_sample_zero_never_mints(self):
        tracer = Tracer(sample=0.0)
        assert not tracer.sampling
        assert all(tracer.maybe_start("q") is None for _ in range(20))
        assert tracer.store.counters()["traces_recorded"] == 0

    def test_sample_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample=1.5)

    def test_trace_ids_unique(self):
        tracer = Tracer(sample=1.0)
        ids = {tracer.maybe_start("q").trace_id for _ in range(50)}
        assert len(ids) == 50

    def test_span_ids_unique_across_tracers(self):
        # A stitched trace mixes spans from several tracers (parent
        # process + each worker); ids must not collide between them.
        a, b = Tracer(sample=1.0), Tracer(sample=1.0)
        ours = {a.maybe_start("q").span_id for _ in range(10)}
        theirs = {b.maybe_start("q").span_id for _ in range(10)}
        assert not ours & theirs


class TestContext:
    def test_use_span_sets_and_restores(self):
        tracer = Tracer(sample=1.0)
        span = tracer.maybe_start("query")
        assert current_span() is None
        with use_span(span) as entered:
            assert entered is span
            assert current_span() is span
        assert current_span() is None

    def test_use_span_none_is_no_trace(self):
        with use_span(None):
            assert current_span() is NO_TRACE
        assert current_span() is None

    def test_start_span_refuses_no_trace_parent(self):
        tracer = Tracer(sample=1.0)
        assert tracer.start_span("child", None) is None
        assert tracer.start_span("child", NO_TRACE) is None

    def test_end_tolerates_none_and_no_trace(self):
        tracer = Tracer(sample=1.0)
        assert tracer.end(None) is None
        assert tracer.end(NO_TRACE) is None


class TestRecordPhase:
    def test_writes_stats_dict_without_span(self):
        phases = {}
        record_phase("peel", 0.002, phases)
        record_phase("peel", 0.001, phases)
        assert phases["peel"] == pytest.approx(3.0)

    def test_writes_active_span_and_stats(self):
        tracer = Tracer(sample=1.0)
        span = tracer.maybe_start("query")
        phases = {}
        with use_span(span):
            record_phase("csr_build", 0.004, phases)
        assert phases["csr_build"] == pytest.approx(4.0)
        assert span.phases["csr_build"] == pytest.approx(4.0)

    def test_no_trace_blocks_span_write(self):
        with use_span(None):
            record_phase("peel", 0.001)  # must not blow up on NO_TRACE


class TestTraceAssembly:
    def test_child_spans_nest_under_root(self):
        tracer = Tracer(sample=1.0)
        root = tracer.maybe_start("transport")
        child = tracer.start_span("engine", root, kernel="fastpeel")
        tracer.end(child)
        trace = tracer.end(root, source="cold")
        names = [span["name"] for span in trace["spans"]]
        assert sorted(names) == ["engine", "transport"]
        engine = next(s for s in trace["spans"] if s["name"] == "engine")
        assert engine["parent_id"] == root.span_id
        assert engine["tags"]["kernel"] == "fastpeel"

    def test_late_child_after_root_closed_is_dropped(self):
        tracer = Tracer(sample=1.0)
        root = tracer.maybe_start("transport")
        straggler = tracer.start_span("engine", root)
        tracer.end(root)
        tracer.end(straggler)  # trace already assembled: no leak
        assert tracer._active == {}
        trace = tracer.store.get(root.trace_id)
        assert [s["name"] for s in trace["spans"]] == ["transport"]

    def test_max_spans_backstop(self):
        tracer = Tracer(sample=1.0)
        root = tracer.maybe_start("transport")
        for _ in range(Tracer.MAX_SPANS + 40):
            tracer.end(tracer.start_span("chatty", root))
        trace = tracer.end(root)
        assert len(trace["spans"]) <= Tracer.MAX_SPANS + 1

    def test_remote_stitching(self):
        parent = Tracer(sample=1.0)
        worker = Tracer(sample=0.0)  # workers never originate traces
        root = parent.maybe_start("transport")
        dispatch = parent.start_span("cluster_dispatch", root)

        wspan = worker.start_remote(
            root.trace_id, dispatch.span_id, "worker", pid=123
        )
        child = worker.start_span("engine", wspan)
        worker.end(child)
        payload = worker.finish_remote(wspan, source="cold")
        assert {span["name"] for span in payload} == {"worker", "engine"}
        # Remote spans never land in the worker-side store.
        assert worker.store.counters()["traces_recorded"] == 0

        parent.attach(dispatch, payload)
        parent.end(dispatch)
        trace = parent.end(root)
        names = {span["name"] for span in trace["spans"]}
        assert names == {"transport", "cluster_dispatch", "worker", "engine"}

    def test_attach_after_close_is_dropped(self):
        tracer = Tracer(sample=1.0)
        root = tracer.maybe_start("transport")
        tracer.end(root)
        tracer.attach(root, [{"span_id": 7, "parent_id": None, "name": "x",
                              "start_ms": 0.0, "duration_ms": 1.0}])
        assert tracer._active == {}


class TestTraceStore:
    def _trace(self, n, duration_ms=1.0):
        return {
            "trace_id": f"t-{n}",
            "name": "query",
            "start_ms": float(n),
            "duration_ms": duration_ms,
            "spans": [],
        }

    def test_ring_bounded_newest_first(self):
        store = TraceStore(capacity=4, slow_capacity=2, slow_ms=1e9)
        for n in range(10):
            store.add(self._trace(n))
        recent = store.recent(100)
        assert [t["trace_id"] for t in recent] == [
            "t-9", "t-8", "t-7", "t-6"
        ]
        assert store.counters()["traces_recorded"] == 10

    def test_slow_exemplars_survive_fast_traffic(self):
        store = TraceStore(capacity=2, slow_capacity=4, slow_ms=100.0)
        store.add(self._trace(0, duration_ms=500.0))  # slow
        for n in range(1, 6):
            store.add(self._trace(n, duration_ms=1.0))
        # Rotated out of the recent ring, still held as an exemplar.
        assert store.get("t-0")["slow"] is True
        assert [t["trace_id"] for t in store.slow(10)] == ["t-0"]

    def test_slow_ms_zero_marks_everything(self):
        tracer = Tracer(sample=1.0, slow_ms=0.0)
        tracer.end(tracer.maybe_start("query"))
        assert tracer.store.slow(10)[0]["slow"] is True

    def test_get_unknown_returns_none(self):
        assert TraceStore().get("nope") is None


class TestFormatting:
    def test_format_trace_line(self):
        tracer = Tracer(sample=1.0, slow_ms=0.0)
        trace = tracer.end(tracer.maybe_start("query"))
        line = format_trace_line(trace)
        assert trace["trace_id"] in line
        assert "SLOW" in line

    def test_format_trace_renders_tree(self):
        tracer = Tracer(sample=1.0)
        root = tracer.maybe_start("transport")
        child = tracer.start_span("engine", root)
        with use_span(child):
            record_phase("peel", 0.001)
        tracer.end(child)
        trace = tracer.end(root)
        rendered = "\n".join(format_trace(trace))
        assert "transport" in rendered and "engine" in rendered
        assert "peel=" in rendered

    def test_format_trace_tolerates_cycles(self):
        # Malformed parent ids (e.g. a hand-crafted payload) must not
        # recurse forever.
        trace = {
            "trace_id": "t",
            "name": "query",
            "start_ms": 0.0,
            "duration_ms": 1.0,
            "spans": [
                {"span_id": 1, "parent_id": 2, "name": "a",
                 "start_ms": 0.0, "duration_ms": 1.0},
                {"span_id": 2, "parent_id": 1, "name": "b",
                 "start_ms": 0.0, "duration_ms": 1.0},
            ],
        }
        rendered = "\n".join(format_trace(trace))
        assert "a" in rendered and "b" in rendered


class TestEngineIntegration:
    def test_cold_query_records_kernel_phases(self, registry):
        tracer = Tracer(sample=1.0)
        engine = QueryEngine(
            registry, cache=ResultCache(), tracer=tracer
        )
        engine.execute(QuerySpec(graph="g", k=2, gamma=2))
        [trace] = tracer.store.recent(10)
        [span] = trace["spans"]
        assert span["name"] == "query"
        assert span["tags"]["source"] == "cold"
        assert len(span.get("phases", {})) >= 3

    def test_engine_respects_upstream_no_trace(self, registry):
        tracer = Tracer(sample=1.0)
        engine = QueryEngine(
            registry, cache=ResultCache(), tracer=tracer
        )
        with use_span(None):  # upstream sampled the query out
            engine.execute(QuerySpec(graph="g", k=2, gamma=2))
        assert tracer.store.counters()["traces_recorded"] == 0

    def test_engine_nests_under_parent_span(self, registry):
        tracer = Tracer(sample=1.0)
        engine = QueryEngine(
            registry, cache=ResultCache(), tracer=tracer
        )
        root = tracer.maybe_start("transport")
        with use_span(root):
            engine.execute(QuerySpec(graph="g", k=2, gamma=2))
        trace = tracer.end(root)
        names = [span["name"] for span in trace["spans"]]
        assert sorted(names) == ["engine", "transport"]

    def test_engine_error_tags_span(self, registry):
        tracer = Tracer(sample=1.0)
        engine = QueryEngine(registry, tracer=tracer)
        with pytest.raises(Exception):
            engine.execute(QuerySpec(graph="missing", k=2, gamma=2))
        [trace] = tracer.store.recent(10)
        assert "error" in trace["spans"][0]["tags"]
