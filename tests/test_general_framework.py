"""The general cohesiveness framework (Section 5.2, Algorithm 6)."""

from __future__ import annotations

import pytest

from repro import top_k_influential_communities, top_k_truss_communities
from repro.core.general import (
    EdgeConnectivityMeasure,
    GeneralLocalSearch,
    MinDegreeMeasure,
    TrussMeasure,
    all_cohesive_communities,
    count_cohesive_communities,
)
from repro.core.reference import reference_communities
from repro.errors import QueryParameterError
from repro.graph.builder import graph_from_arrays
from tests.conftest import random_graph


class TestMinDegreeMeasure:
    def test_matches_gamma_core(self, two_cliques):
        measure = MinDegreeMeasure()
        got = measure.cohesive_vertices(two_cliques, set(range(8)), 3)
        assert got == set(range(8))
        assert measure.cohesive_vertices(two_cliques, set(range(8)), 4) == set()

    def test_respects_member_restriction(self, two_cliques):
        measure = MinDegreeMeasure()
        got = measure.cohesive_vertices(two_cliques, {0, 1, 2, 3, 4}, 3)
        assert got == {0, 1, 2, 3}

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("gamma", [1, 2, 3])
    def test_general_count_matches_fast_path(self, seed, gamma):
        g = random_graph(14, 0.3, seed, weights="shuffled")
        expected = len(reference_communities(g, gamma))
        got = count_cohesive_communities(
            g, g.num_vertices, gamma, MinDegreeMeasure()
        )
        assert got == expected

    @pytest.mark.parametrize("seed", range(5))
    def test_general_communities_match_fast_path(self, seed):
        g = random_graph(14, 0.3, seed, weights="shuffled")
        general = all_cohesive_communities(
            g, g.num_vertices, 2, MinDegreeMeasure()
        )
        got = [(c.influence, frozenset(c.members)) for c in general]
        assert got == reference_communities(g, 2)


class TestTrussMeasure:
    def test_validate_gamma(self):
        with pytest.raises(QueryParameterError):
            TrussMeasure().validate_gamma(1)

    def test_k4(self):
        g = graph_from_arrays(
            4, [(i, j) for i in range(4) for j in range(i + 1, 4)]
        )
        measure = TrussMeasure()
        assert measure.cohesive_vertices(g, set(range(4)), 4) == set(range(4))
        assert measure.cohesive_vertices(g, set(range(4)), 5) == set()

    @pytest.mark.parametrize("seed", range(4))
    def test_general_matches_fast_truss_path(self, seed):
        g = random_graph(12, 0.45, seed, weights="shuffled")
        general = all_cohesive_communities(g, 12, 3, TrussMeasure())
        fast = top_k_truss_communities(g, k=max(len(general), 1), gamma=3)
        got = [(c.influence, frozenset(c.members)) for c in general]
        expected = [
            (c.influence, frozenset(c.vertex_ranks))
            for c in fast.communities
        ]
        assert got == expected


class TestEdgeConnectivityMeasure:
    def test_clique_is_k_minus_1_connected(self):
        g = graph_from_arrays(
            5, [(i, j) for i in range(5) for j in range(i + 1, 5)]
        )
        measure = EdgeConnectivityMeasure()
        assert measure.cohesive_vertices(g, set(range(5)), 4) == set(range(5))
        assert measure.cohesive_vertices(g, set(range(5)), 5) == set()

    def test_bridge_splits(self):
        # Two triangles joined by a bridge: 2-edge-connected parts only.
        g = graph_from_arrays(
            6, [(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5), (2, 3)]
        )
        measure = EdgeConnectivityMeasure()
        got = measure.cohesive_vertices(g, set(range(6)), 2)
        assert got == set(range(6)) - set()  # both triangles qualify
        # The bridge itself is not 2-edge-connected: the whole graph at
        # gamma=2 splits into the two triangles; check via communities.
        communities = all_cohesive_communities(
            g, 6, 2, EdgeConnectivityMeasure()
        )
        sizes = sorted(len(c.members) for c in communities)
        assert 3 in sizes

    def test_cycle_is_2_edge_connected(self):
        g = graph_from_arrays(6, [(i, (i + 1) % 6) for i in range(6)])
        measure = EdgeConnectivityMeasure()
        assert measure.cohesive_vertices(g, set(range(6)), 2) == set(range(6))
        assert measure.cohesive_vertices(g, set(range(6)), 3) == set()

    def test_against_networkx_edge_connectivity(self):
        nx = pytest.importorskip("networkx")
        g = random_graph(10, 0.45, 3, weights="shuffled")
        measure = EdgeConnectivityMeasure()
        for gamma in (2, 3):
            got = measure.cohesive_vertices(g, set(range(10)), gamma)
            # Brute-force check: every returned component must be
            # gamma-edge-connected per networkx.
            from repro.graph.connectivity import connected_components
            from repro.graph.subgraph import PrefixView

            if not got:
                continue
            view = PrefixView.whole(g)
            alive = [r in got for r in range(10)]
            for comp in connected_components(view, alive):
                if len(comp) < 2:
                    continue
                ng = nx.Graph()
                ng.add_nodes_from(comp)
                members = set(comp)
                for u in comp:
                    for w in g.iter_neighbors(u):
                        if w in members:
                            ng.add_edge(u, w)
                assert nx.edge_connectivity(ng) >= gamma


class TestGeneralLocalSearch:
    def test_validation(self, fig3):
        with pytest.raises(QueryParameterError):
            GeneralLocalSearch(fig3, gamma=0, measure=MinDegreeMeasure())
        with pytest.raises(QueryParameterError):
            GeneralLocalSearch(
                fig3, gamma=2, measure=MinDegreeMeasure(), delta=1.0
            )
        with pytest.raises(QueryParameterError):
            GeneralLocalSearch(
                fig3, gamma=2, measure=MinDegreeMeasure()
            ).search(0)

    def test_min_degree_matches_local_search(self, fig3):
        general = GeneralLocalSearch(
            fig3, gamma=3, measure=MinDegreeMeasure()
        ).search(4)
        fast = top_k_influential_communities(fig3, k=4, gamma=3)
        assert [
            (c.influence, frozenset(c.members)) for c in general.communities
        ] == [
            (c.influence, frozenset(c.vertex_ranks))
            for c in fast.communities
        ]

    def test_truss_measure_via_general_search(self, fig3):
        general = GeneralLocalSearch(
            fig3, gamma=3, measure=TrussMeasure()
        ).search(2)
        fast = top_k_truss_communities(fig3, k=2, gamma=3)
        assert general.influences == fast.influences

    def test_edge_connectivity_communities_are_found(self, two_cliques):
        result = GeneralLocalSearch(
            two_cliques, gamma=3, measure=EdgeConnectivityMeasure()
        ).search(2)
        assert len(result.communities) == 2
        sizes = sorted(c.num_vertices for c in result.communities)
        assert sizes == [4, 4]

    def test_result_protocol(self, two_cliques):
        result = GeneralLocalSearch(
            two_cliques, gamma=3, measure=MinDegreeMeasure()
        ).search(2)
        assert len(result) == 2
        assert list(result)
        assert result.influences == sorted(result.influences, reverse=True)
        labels = result.communities[0].vertices
        assert len(labels) == result.communities[0].num_vertices
