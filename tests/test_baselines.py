"""Baseline algorithms: OnlineAll, Forward, Backward, IndexAll."""

from __future__ import annotations

import pytest

from repro import top_k_influential_communities
from repro.baselines import ICPIndex, backward, forward, online_all
from repro.baselines.online_all import online_all_count
from repro.core.count import count_communities
from repro.core.reference import reference_top_k
from repro.errors import QueryParameterError
from repro.graph.subgraph import PrefixView
from tests.conftest import random_graph


def pairs(graph, result):
    return [
        (c.influence, frozenset(c.vertex_ranks)) for c in result.communities
    ]


class TestOnlineAll:
    def test_validation(self, fig3):
        with pytest.raises(QueryParameterError):
            online_all(fig3, 0, 3)
        with pytest.raises(QueryParameterError):
            online_all(fig3, 1, 0)

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("gamma", [1, 2, 3])
    @pytest.mark.parametrize("k", [1, 4])
    def test_matches_reference(self, seed, gamma, k):
        g = random_graph(18, 0.3, seed, weights="shuffled")
        result = online_all(g, k, gamma)
        assert pairs(g, result) == reference_top_k(g, k, gamma)

    def test_count_helper(self, fig3):
        view = PrefixView.whole(fig3)
        assert online_all_count(view, 3) == count_communities(view, 3)

    def test_prefix_restriction(self, fig3):
        result = online_all(fig3, 4, 3, prefix=13)
        assert len(result.communities) == 4

    def test_fig3(self, fig3):
        result = online_all(fig3, 4, 3)
        expected = top_k_influential_communities(fig3, 4, 3)
        assert pairs(fig3, result) == pairs(fig3, expected)


class TestForward:
    def test_validation(self, fig3):
        with pytest.raises(QueryParameterError):
            forward(fig3, 0, 3)
        with pytest.raises(QueryParameterError):
            forward(fig3, 1, 0)

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("gamma", [1, 2, 3])
    @pytest.mark.parametrize("k", [1, 4])
    def test_matches_reference(self, seed, gamma, k):
        g = random_graph(18, 0.3, seed, weights="shuffled")
        result = forward(g, k, gamma)
        assert pairs(g, result) == reference_top_k(g, k, gamma)

    def test_is_global(self, email_graph):
        """Forward always peels the entire graph."""
        result = forward(email_graph, 1, 10)
        assert result.stats.prefixes == [email_graph.num_vertices]


class TestBackward:
    def test_validation(self, fig3):
        with pytest.raises(QueryParameterError):
            backward(fig3, 0, 3)
        with pytest.raises(QueryParameterError):
            backward(fig3, 1, 0)

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("gamma", [1, 2, 3])
    @pytest.mark.parametrize("k", [1, 4])
    def test_matches_reference(self, seed, gamma, k):
        g = random_graph(18, 0.3, seed, weights="shuffled")
        result = backward(g, k, gamma)
        assert pairs(g, result) == reference_top_k(g, k, gamma)

    def test_max_prefix_cap(self, fig3):
        result = backward(fig3, 100, 3, max_prefix=5)
        assert result.stats.prefixes == [5]
        assert len(result.communities) <= 100

    def test_quadratic_work_recorded(self, fig3):
        result = backward(fig3, 4, 3)
        # Total work is the sum of all prefix sizes: strictly more than
        # the final prefix alone.
        final_prefix_size = fig3.prefix_size(result.stats.prefixes[0])
        assert result.stats.prefix_sizes[0] > final_prefix_size


class TestICPIndex:
    def test_query_before_build(self, fig3):
        with pytest.raises(QueryParameterError):
            ICPIndex(fig3).query(1, 3)

    def test_matches_local_search(self, fig3):
        index = ICPIndex(fig3).build()
        for gamma in (1, 2, 3):
            for k in (1, 4):
                got = index.query(k, gamma)
                expected = top_k_influential_communities(fig3, k, gamma)
                assert [
                    (c.influence, frozenset(c.vertex_ranks)) for c in got
                ] == [
                    (c.influence, frozenset(c.vertex_ranks))
                    for c in expected.communities
                ]

    def test_index_miss_materialises_on_demand(self, fig3):
        index = ICPIndex(fig3).build(gammas=[2])
        assert index.query(1, 3)  # gamma=3 not pre-built: index miss path

    def test_num_communities(self, fig3):
        index = ICPIndex(fig3).build()
        assert index.num_communities(3) == 8

    def test_footprint_positive(self, fig3):
        index = ICPIndex(fig3).build()
        assert index.index_entries() > 0
        assert index.is_built
        assert index.build_seconds > 0

    def test_validation(self, fig3):
        index = ICPIndex(fig3).build(gammas=[2])
        with pytest.raises(QueryParameterError):
            index.query(0, 2)


class TestCrossAlgorithmAgreement:
    """All five top-k algorithms agree on a batch of random graphs."""

    @pytest.mark.parametrize("seed", range(10))
    def test_all_agree(self, seed):
        from repro import LocalSearchP

        g = random_graph(22, 0.25, seed, weights="shuffled")
        k, gamma = 5, 2
        expected = reference_top_k(g, k, gamma)
        ls = top_k_influential_communities(g, k, gamma)
        lsp = LocalSearchP(g, gamma=gamma).run(k=k)
        fw = forward(g, k, gamma)
        oa = online_all(g, k, gamma)
        bw = backward(g, k, gamma)
        for result in (ls, lsp, fw, oa, bw):
            assert pairs(g, result) == expected
