"""Unit tests for PrefixView (the G>=tau windows)."""

from __future__ import annotations

import pytest

from repro.graph.builder import graph_from_arrays
from repro.graph.subgraph import PrefixView


def path_graph(n=5):
    return graph_from_arrays(n, [(i, i + 1) for i in range(n - 1)])


class TestBounds:
    def test_invalid_prefix(self):
        g = path_graph()
        with pytest.raises(ValueError):
            PrefixView(g, -1)
        with pytest.raises(ValueError):
            PrefixView(g, 6)

    def test_empty_prefix(self):
        view = PrefixView(path_graph(), 0)
        assert view.num_vertices == 0
        assert view.num_edges == 0
        assert view.size == 0

    def test_whole(self):
        g = path_graph()
        view = PrefixView.whole(g)
        assert view.is_whole_graph
        assert view.size == g.size

    def test_for_threshold(self):
        g = path_graph(5)  # weights 5..1
        view = PrefixView.for_threshold(g, 3.0)
        assert view.p == 3
        assert view.threshold == 3.0


class TestDegreesAndNeighbors:
    def test_degrees_match_manual(self):
        g = graph_from_arrays(4, [(0, 1), (0, 2), (1, 2), (2, 3)])
        view = PrefixView(g, 3)
        assert view.degrees() == [2, 2, 2]
        assert view.degree(2) == 2
        full = PrefixView(g, 4)
        assert full.degrees() == [2, 2, 3, 1]

    def test_neighbors_restricted(self):
        g = graph_from_arrays(4, [(0, 1), (0, 2), (1, 2), (2, 3)])
        view = PrefixView(g, 3)
        assert sorted(view.neighbors(2)) == [0, 1]

    def test_neighbor_lists_mirror(self):
        g = graph_from_arrays(4, [(0, 1), (0, 2), (1, 2), (2, 3)])
        view = PrefixView(g, 4)
        lists = view.neighbor_lists()
        for u in range(4):
            for v in lists[u]:
                assert u in lists[v]
        assert sum(len(x) for x in lists) == 2 * view.num_edges

    def test_down_cut_cached(self):
        g = graph_from_arrays(4, [(0, 1), (0, 2), (0, 3)])
        view = PrefixView(g, 2)
        assert view.down_cut(0) == 1  # only rank 1 of {1,2,3} is in prefix
        assert view.down_cut(1) == 0

    def test_iter_edges(self):
        g = graph_from_arrays(4, [(0, 1), (0, 2), (1, 2), (2, 3)])
        view = PrefixView(g, 3)
        assert sorted(view.iter_edges()) == [(1, 0), (2, 0), (2, 1)]

    def test_size_consistency(self):
        g = graph_from_arrays(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5),
                                  (0, 5), (1, 4)])
        for p in range(7):
            view = PrefixView(g, p)
            edges = list(view.iter_edges())
            assert view.num_edges == len(edges)
            assert view.size == p + len(edges)
