"""repro.live — streaming edge mutations over versioned CSR overlays.

Covers the whole subsystem end to end:

* :class:`EdgeBatch` validation and :func:`apply_batch` semantics
  (effective ops vs no-ops, barrier weights, the overlay fast path vs
  the rank-shuffle rebuild);
* :class:`DeltaCSR` byte-identity against a scratch rebuild, chaining,
  pickling (flattens), and materialisation;
* the differential property (satellite 1): random mutation streams
  replayed through the overlay path and through scratch rebuilds give
  byte-identical top-k answers across kernels and serving backends;
* :class:`GraphRegistry` mutation surface — versioning, delta chains,
  compaction (explicit and background), mutation hooks;
* scoped cache invalidation: families whose influence watermark clears
  the mutation barrier survive verbatim, the rest recompute — and both
  always match a scratch-rebuilt oracle;
* the cluster tier: worker delta catch-up without re-attach, the
  no-downgrade regression (a dispatcher racing a version flip must not
  force a worker back to a stale generation), the mixed-version mirror
  guard, and shared-memory segment hygiene.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.api.spec import QuerySpec
from repro.cluster import ClusterPool
from repro.errors import GraphConstructionError, SelfLoopError
from repro.graph.builder import graph_from_arrays
from repro.graph.csr import CSRAdjacency, DeltaCSR
from repro.graph.delta import (
    EdgeBatch,
    apply_batch,
    apply_ops_to_model,
)
from repro.service.cache import CacheKey, ResultCache
from repro.service.engine import QueryEngine
from repro.service.metrics import ServiceMetrics
from repro.service.registry import GraphRegistry
from repro.workloads.generators import (
    build_weighted_graph,
    chung_lu,
    delta_stream,
    erdos_renyi,
)

needs_mp = pytest.mark.skipif(
    not ClusterPool.available(), reason="multiprocessing unavailable"
)

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy is in the CI image
    HAVE_NUMPY = False

KERNELS = ["python", "array"] + (["numpy"] if HAVE_NUMPY else [])


def _distinct_weights(n: int, seed: int = 0) -> list:
    rng = random.Random(seed)
    weights = set()
    while len(weights) < n:
        weights.add(round(rng.uniform(1.0, 100.0), 6))
    out = sorted(weights, reverse=True)
    rng.shuffle(out)
    return [float(w) for w in out]


def _small_graph():
    edges = [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5), (1, 5)]
    weights = [17.5, 16.25, 15.0, 13.75, 12.5, 11.25]
    return graph_from_arrays(6, edges, weights=weights), edges, weights


def _scratch(graph, model_edges, model_weights):
    n = graph.num_vertices
    return graph_from_arrays(
        n, sorted(model_edges), weights=[model_weights[i] for i in range(n)]
    )


def _csr_tuple(csr):
    up_off, up_tgt, down_off, down_tgt = csr.lists()
    return list(up_off), list(up_tgt), list(down_off), list(down_tgt)


# ----------------------------------------------------------------------
# EdgeBatch + apply_batch semantics
# ----------------------------------------------------------------------
class TestEdgeBatch:
    def test_validates_op_kinds(self):
        with pytest.raises(ValueError):
            EdgeBatch(ops=(("upsert", 0, 1),))

    def test_rejects_self_loops(self):
        with pytest.raises(SelfLoopError):
            EdgeBatch(ops=(("insert", 3, 3),))

    def test_reweight_needs_numeric_weight(self):
        with pytest.raises((TypeError, ValueError)):
            EdgeBatch(ops=(("reweight", 0, "heavy"),))

    def test_len_iter_describe(self):
        batch = EdgeBatch(ops=(("insert", 0, 1), ("reweight", 2, 5.5)))
        assert len(batch) == 2
        assert list(batch) == [("insert", 0, 1), ("reweight", 2, 5.5)]
        assert "insert" in batch.describe()


class TestApplyBatch:
    def test_insert_updates_adjacency_and_stats(self):
        graph, _, _ = _small_graph()
        new, barrier, stats = apply_batch(
            graph, EdgeBatch(ops=(("insert", 0, 4),))
        )
        assert stats.inserted == 1 and stats.noops == 0
        assert new.num_edges == graph.num_edges + 1
        assert new.has_edge_ranks(new.rank_of(0), new.rank_of(4))
        assert not graph.has_edge_ranks(graph.rank_of(0), graph.rank_of(4))
        # barrier = min endpoint weight of the touched edge
        assert barrier == 12.5

    def test_delete_and_noop_accounting(self):
        graph, _, _ = _small_graph()
        batch = EdgeBatch(ops=(("delete", 0, 1), ("delete", 3, 5)))
        new, barrier, stats = apply_batch(graph, batch)
        assert stats.deleted == 1
        assert stats.noops == 1  # (3, 5) was never present
        assert new.num_edges == graph.num_edges - 1
        assert barrier == 16.25

    def test_pure_noop_returns_same_graph(self):
        graph, _, _ = _small_graph()
        new, barrier, stats = apply_batch(
            graph, EdgeBatch(ops=(("delete", 3, 5),))
        )
        assert new is graph
        assert barrier == float("-inf")
        assert stats.noops == 1

    def test_reweight_without_rank_shuffle_shares_rows(self):
        graph, _, _ = _small_graph()
        graph.csr()  # materialise the base CSR so sharing is observable
        # vertex 5: 11.25 -> 11.5 keeps the rank order intact
        new, barrier, stats = apply_batch(
            graph, EdgeBatch(ops=(("reweight", 5, 11.5),))
        )
        assert stats.reweighted == 1 and stats.rank_shuffle == 0
        assert barrier == 11.5
        assert new.weight(new.rank_of(5)) == 11.5
        # adjacency untouched: the new generation shares the base CSR
        assert new.csr() is graph.csr()

    def test_reweight_rank_shuffle_rebuilds(self):
        graph, edges, weights = _small_graph()
        new, barrier, stats = apply_batch(
            graph, EdgeBatch(ops=(("reweight", 5, 99.0),))
        )
        assert stats.rank_shuffle == 1
        assert new.rank_of(5) == 0  # now the heaviest vertex
        assert barrier == 99.0
        model_w = {i: w for i, w in enumerate(weights)}
        model_w[5] = 99.0
        oracle = _scratch(graph, set(edges), model_w)
        assert _csr_tuple(new.csr()) == _csr_tuple(oracle.csr())

    def test_weight_collision_raises(self):
        graph, _, _ = _small_graph()
        with pytest.raises(GraphConstructionError):
            apply_batch(graph, EdgeBatch(ops=(("reweight", 5, 17.5),)))

    def test_last_op_wins_per_edge(self):
        graph, _, _ = _small_graph()
        batch = EdgeBatch(
            ops=(("insert", 0, 4), ("delete", 0, 4), ("insert", 0, 4))
        )
        new, _, stats = apply_batch(graph, batch)
        assert stats.inserted == 1 and stats.deleted == 0
        assert new.has_edge_ranks(new.rank_of(0), new.rank_of(4))


# ----------------------------------------------------------------------
# DeltaCSR overlay
# ----------------------------------------------------------------------
class TestDeltaCSR:
    def _mutated(self):
        graph, edges, weights = _small_graph()
        graph.csr()  # a base CSR must exist for the overlay to wrap
        new, _, _ = apply_batch(
            graph,
            EdgeBatch(ops=(("insert", 0, 4), ("delete", 1, 2))),
        )
        model_e = set(edges)
        model_w = {i: w for i, w in enumerate(weights)}
        apply_ops_to_model(
            model_e, model_w, (("insert", 0, 4), ("delete", 1, 2))
        )
        return new, _scratch(graph, model_e, model_w)

    def test_overlay_is_delta_csr_and_byte_identical(self):
        new, oracle = self._mutated()
        csr = new.csr()
        assert isinstance(csr, DeltaCSR)
        assert _csr_tuple(csr) == _csr_tuple(oracle.csr())
        assert list(csr.up_offsets) == list(oracle.csr().up_offsets)
        assert list(csr.up_targets) == list(oracle.csr().up_targets)
        assert list(csr.down_offsets) == list(oracle.csr().down_offsets)
        assert list(csr.down_targets) == list(oracle.csr().down_targets)

    def test_overlay_chains_and_depth(self):
        graph, _, _ = _small_graph()
        graph.csr()
        g1, _, _ = apply_batch(graph, EdgeBatch(ops=(("insert", 0, 4),)))
        g2, _, _ = apply_batch(g1, EdgeBatch(ops=(("insert", 0, 5),)))
        csr = g2.csr()
        assert isinstance(csr, DeltaCSR)
        assert csr.depth == 2

    def test_pickles_as_flat_csr(self):
        import pickle

        new, oracle = self._mutated()
        revived = pickle.loads(pickle.dumps(new.csr()))
        assert isinstance(revived, CSRAdjacency)
        assert not isinstance(revived, DeltaCSR)
        assert _csr_tuple(revived) == _csr_tuple(oracle.csr())

    def test_materialize_matches(self):
        new, oracle = self._mutated()
        flat = new.csr().materialize()
        assert isinstance(flat, CSRAdjacency)
        assert _csr_tuple(flat) == _csr_tuple(oracle.csr())

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")
    def test_numpy_views_match(self):
        new, oracle = self._mutated()
        mine = new.csr().numpy_views()
        theirs = oracle.csr().numpy_views()
        for a, b in zip(mine, theirs):
            assert a.tolist() == b.tolist()


# ----------------------------------------------------------------------
# satellite 1: the differential property
# ----------------------------------------------------------------------
class TestDifferentialProperty:
    def _stream_setup(self, seed):
        n, edges = erdos_renyi(60, 150, seed=seed)
        weights = _distinct_weights(n, seed=seed)
        graph = graph_from_arrays(n, edges, weights=weights)
        model_e = set(edges)
        model_w = {i: w for i, w in enumerate(weights)}
        return n, edges, weights, graph, model_e, model_w

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_overlay_matches_scratch_rebuild_per_kernel(self, kernel):
        n, edges, weights, graph, model_e, model_w = self._stream_setup(11)
        rng = random.Random(11)
        for batch in delta_stream(
            rng, n, edges, weights, batches=8, ops_per_batch=5
        ):
            graph, _, _ = apply_batch(graph, batch)
            apply_ops_to_model(model_e, model_w, batch.ops)
            oracle = _scratch(graph, model_e, model_w)
            spec_live = QuerySpec(graph="live", gamma=2, k=5, kernel=kernel)
            spec_oracle = QuerySpec(
                graph="oracle", gamma=2, k=5, kernel=kernel
            )
            reg = GraphRegistry(preload_datasets=False)
            live_graph, oracle_graph = graph, oracle
            reg.register("live", lambda g=live_graph: g)
            reg.register("oracle", lambda g=oracle_graph: g)
            engine = QueryEngine(reg)
            got = engine.execute(spec_live)
            want = engine.execute(spec_oracle)
            assert [
                (v.keynode, v.influence, v.members) for v in got.communities
            ] == [
                (v.keynode, v.influence, v.members) for v in want.communities
            ]

    def test_registry_apply_matches_scratch_through_service(self):
        n, edges, weights, graph, model_e, model_w = self._stream_setup(23)
        registry = GraphRegistry(preload_datasets=False, compact_after=None)
        base = graph
        registry.register("g", lambda: base)
        cache = ResultCache(32)
        engine = QueryEngine(registry, cache=cache)
        rng = random.Random(23)
        spec = QuerySpec(graph="g", gamma=2, k=6)
        for batch in delta_stream(
            rng, n, edges, weights, batches=6, ops_per_batch=4
        ):
            registry.apply("g", batch)
            apply_ops_to_model(model_e, model_w, batch.ops)
            got = engine.execute(spec)
            oreg = GraphRegistry(preload_datasets=False)
            oracle = _scratch(graph, model_e, model_w)
            oreg.register("g", lambda g=oracle: g)
            want = QueryEngine(oreg).execute(spec)
            assert [
                (v.keynode, v.influence, v.members) for v in got.communities
            ] == [
                (v.keynode, v.influence, v.members) for v in want.communities
            ]

    @needs_mp
    @pytest.mark.parametrize("start", ["fork", "spawn"])
    def test_cluster_backends_match_scratch(self, start):
        import multiprocessing as mp

        if start not in mp.get_all_start_methods():
            pytest.skip(f"start method {start!r} unavailable")
        batches = 4 if start == "fork" else 2
        n, edges = erdos_renyi(50, 120, seed=31)
        weights = _distinct_weights(n, seed=31)
        base = graph_from_arrays(n, edges, weights=weights)
        model_e, model_w = set(edges), {i: w for i, w in enumerate(weights)}
        registry = GraphRegistry(preload_datasets=False, compact_after=None)
        registry.register("g", lambda: base)
        cache = ResultCache(32)
        engine = QueryEngine(registry, cache=cache)
        pool = ClusterPool(
            1, registry, cache=cache, start_method=start
        )
        spec = QuerySpec(graph="g", gamma=2, k=5)
        rng = random.Random(31)
        try:
            pool.warm("g")
            for batch in delta_stream(
                rng, n, edges, weights, batches=batches, ops_per_batch=4
            ):
                registry.apply("g", batch)
                apply_ops_to_model(model_e, model_w, batch.ops)
                got = pool.execute(engine, spec)
                oracle = _scratch(base, model_e, model_w)
                oreg = GraphRegistry(preload_datasets=False)
                oreg.register("g", lambda g=oracle: g)
                want = QueryEngine(oreg).execute(spec)
                assert [
                    (v.keynode, v.influence, v.members)
                    for v in got.communities
                ] == [
                    (v.keynode, v.influence, v.members)
                    for v in want.communities
                ]
        finally:
            pool.shutdown()


# ----------------------------------------------------------------------
# registry: versions, delta chains, compaction, hooks
# ----------------------------------------------------------------------
class TestRegistryLive:
    def _registry(self, compact_after=None):
        graph, edges, weights = _small_graph()
        registry = GraphRegistry(
            preload_datasets=False, compact_after=compact_after
        )
        registry.register("g", lambda: graph)
        return registry, graph

    def test_apply_bumps_version_and_tracks_deltas(self):
        registry, _ = self._registry()
        assert registry.get("g").version == 1
        event = registry.apply("g", [("insert", 0, 4)])
        assert (event.old_version, event.new_version) == (1, 2)
        assert registry.get("g").version == 2
        assert registry.pending_deltas("g") == 1
        assert registry.mutations == 1

    def test_delta_chain_contiguity(self):
        registry, _ = self._registry()
        registry.apply("g", [("insert", 0, 4)])
        registry.apply("g", [("insert", 0, 5)])
        chain = registry.delta_chain("g", 1, 3)
        assert chain is not None and len(chain) == 2
        assert registry.delta_chain("g", 2, 3) is not None
        assert registry.delta_chain("g", 0, 3) is None  # v0 predates deltas

    def test_compact_folds_and_clears(self):
        registry, _ = self._registry()
        registry.apply("g", [("insert", 0, 4)])
        registry.apply("g", [("delete", 0, 1)])
        before = registry.get("g")
        assert isinstance(before.graph.csr(), DeltaCSR)
        event = registry.compact("g")
        assert event is not None and event.kind == "compact"
        after = registry.get("g")
        assert after.version == before.version + 1
        assert registry.pending_deltas("g") == 0
        assert registry.delta_chain("g", before.version, after.version) is None
        flat = after.graph.csr()
        assert isinstance(flat, CSRAdjacency) and not isinstance(
            flat, DeltaCSR
        )
        assert _csr_tuple(flat) == _csr_tuple(before.graph.csr())
        assert registry.compactions == 1

    def test_compact_without_deltas_is_none(self):
        registry, _ = self._registry()
        assert registry.compact("g") is None

    def test_background_compaction_fires(self):
        registry, _ = self._registry(compact_after=2)
        registry.apply("g", [("insert", 0, 4)])
        registry.apply("g", [("insert", 0, 5)])
        deadline = time.time() + 5.0
        while registry.pending_deltas("g") and time.time() < deadline:
            time.sleep(0.02)
        assert registry.pending_deltas("g") == 0
        assert registry.compactions == 1

    def test_mutation_hooks_fire_and_build_resets(self):
        registry, _ = self._registry()
        events = []
        registry.add_mutation_hook(events.append)
        registry.apply("g", [("insert", 0, 4)])
        assert len(events) == 1 and events[0].kind == "mutate"
        registry.compact("g")
        assert len(events) == 2 and events[1].kind == "compact"
        registry.remove_mutation_hook(events.append)
        registry.apply("g", [("insert", 1, 3)])
        assert len(events) == 2

    def test_describe_reports_pending_deltas(self):
        registry, _ = self._registry()
        registry.apply("g", [("insert", 0, 4)])
        rows = {row["name"]: row for row in registry.describe()}
        assert rows["g"]["pending_deltas"] == 1


# ----------------------------------------------------------------------
# scoped cache invalidation
# ----------------------------------------------------------------------
class TestScopedInvalidation:
    def _stack(self):
        graph, edges, weights = _small_graph()
        registry = GraphRegistry(
            preload_datasets=False, compact_after=None
        )
        registry.register("g", lambda: graph)
        cache = ResultCache(32)
        metrics = ServiceMetrics()
        engine = QueryEngine(registry, cache=cache, metrics=metrics)
        return registry, cache, metrics, engine

    def test_low_barrier_mutation_preserves_cached_family(self):
        registry, cache, metrics, engine = self._stack()
        spec = QuerySpec(graph="g", gamma=1, k=2)
        engine.execute(spec)
        # insert far below the cached watermark (top-2 influence 15.0)
        event = registry.apply("g", [("insert", 3, 5)])
        assert event.preserved == 1 and event.invalidated == 0
        result = engine.execute(spec)
        assert result.source == "cache"
        assert result.graph_version == event.new_version

    def test_high_barrier_mutation_invalidates(self):
        registry, cache, metrics, engine = self._stack()
        spec = QuerySpec(graph="g", gamma=1, k=2)
        engine.execute(spec)
        event = registry.apply("g", [("delete", 0, 1)])
        assert event.invalidated == 1 and event.preserved == 0
        result = engine.execute(spec)
        assert result.source == "cold"
        assert result.graph_version == event.new_version

    def test_preserved_answers_match_scratch_oracle(self):
        registry, cache, metrics, engine = self._stack()
        spec = QuerySpec(graph="g", gamma=1, k=2)
        engine.execute(spec)
        registry.apply("g", [("insert", 3, 5)])
        preserved = engine.execute(spec)
        graph, edges, weights = _small_graph()
        model_e, model_w = set(edges), dict(enumerate(weights))
        apply_ops_to_model(model_e, model_w, (("insert", 3, 5),))
        oreg = GraphRegistry(preload_datasets=False)
        oracle = _scratch(graph, model_e, model_w)
        oreg.register("g", lambda: oracle)
        want = QueryEngine(oreg).execute(spec)
        assert [
            (v.keynode, v.influence, v.members)
            for v in preserved.communities
        ] == [
            (v.keynode, v.influence, v.members) for v in want.communities
        ]

    def test_compaction_preserves_everything(self):
        registry, cache, metrics, engine = self._stack()
        spec = QuerySpec(graph="g", gamma=1, k=2)
        engine.execute(spec)
        registry.apply("g", [("delete", 0, 1)])
        engine.execute(spec)  # recompute under v2
        event = registry.compact("g")
        assert event.preserved >= 1 and event.invalidated == 0
        result = engine.execute(spec)
        assert result.source == "cache"
        assert result.graph_version == event.new_version

    def test_metrics_live_section(self):
        registry, cache, metrics, engine = self._stack()
        spec = QuerySpec(graph="g", gamma=1, k=2)
        engine.execute(spec)
        registry.apply("g", [("insert", 3, 5)])
        registry.apply("g", [("delete", 0, 1)])
        registry.compact("g")
        live = metrics.snapshot()["live"]
        assert live["mutations_applied"] == 2
        assert live["compactions"] == 1
        assert live["families_preserved"] >= 1
        assert live["families_invalidated"] >= 1
        assert live["graph_generation"]["g"] == registry.get("g").version

    def test_migrate_unit_semantics(self):
        # Direct migrate_graph exercise, no engine: watermark vs barrier.
        from repro.service.cache import StaticEntry
        from repro.service.model import CommunityView

        cache = ResultCache(8)
        views = (
            CommunityView(
                keynode=1, influence=9.0, size=2, members=(0, 1)
            ),
        )
        keep = CacheKey(
            graph="g", version=1, gamma=1, algorithm="forward",
            delta=None, kernel=None,
        )
        drop = CacheKey(
            graph="g", version=1, gamma=2, algorithm="forward",
            delta=None, kernel=None,
        )
        cache.put(keep, StaticEntry(views, True))
        low = (
            CommunityView(
                keynode=3, influence=2.0, size=2, members=(3, 4)
            ),
        )
        cache.put(drop, StaticEntry(low, True))
        preserved, invalidated = cache.migrate_graph(
            "g", 1, 2, barrier=5.0
        )
        assert (preserved, invalidated) == (1, 1)
        migrated = cache.get(
            CacheKey(
                graph="g", version=2, gamma=1, algorithm="forward",
                delta=None, kernel=None,
            )
        )
        assert migrated is not None and migrated.views == views
        # non-identical migration can never claim completeness
        assert migrated.complete is False
        assert cache.get(keep) is None


# ----------------------------------------------------------------------
# cluster: delta pickup, no-downgrade, mirror guard, segment hygiene
# ----------------------------------------------------------------------
@needs_mp
class TestClusterLive:
    def _stack(self):
        n, edges = chung_lu(120, avg_degree=5.0, seed=13)
        graph = build_weighted_graph(n, edges, weights="degree", seed=13)
        registry = GraphRegistry(
            preload_datasets=False, compact_after=None
        )
        registry.register("g", lambda: graph)
        cache = ResultCache(32)
        metrics = ServiceMetrics()
        engine = QueryEngine(registry, cache=cache, metrics=metrics)
        return registry, cache, metrics, engine

    def test_worker_catches_up_via_delta_chain(self):
        registry, cache, metrics, engine = self._stack()
        pool = ClusterPool(1, registry, cache=cache, metrics=metrics)
        spec = QuerySpec(graph="g", gamma=2, k=4)
        try:
            pool.warm("g")
            pool.execute(engine, spec)
            registry.apply("g", [("insert", 0, 7)])
            # force a worker dispatch (a preserved family may be served
            # from the migrated parent mirror): ask for more than cached
            result = pool.execute(
                engine, QuerySpec(graph="g", gamma=2, k=12)
            )
            assert result.graph_version == registry.get("g").version
            attaches = metrics.snapshot()["cluster"]["segment_attaches"]
            assert attaches.get("delta", 0) >= 1
        finally:
            pool.shutdown()

    def test_no_downgrade_on_stale_handle(self):
        registry, cache, metrics, engine = self._stack()
        pool = ClusterPool(1, registry, cache=cache, metrics=metrics)
        spec = QuerySpec(graph="g", gamma=2, k=4)
        try:
            pool.warm("g")
            stale = registry.get("g")  # v1 handle, held across the flip
            pool.execute(engine, spec)
            registry.apply("g", [("insert", 0, 7)])
            pool.execute(engine, QuerySpec(graph="g", gamma=2, k=12))
            worker = pool._workers[0]
            current = worker.attached["g"]
            assert current == registry.get("g").version
            with worker.lock:
                pool._ensure_attached(worker, stale)
            # the racing stale-handle dispatcher must not win a downgrade
            assert worker.attached["g"] == current
        finally:
            pool.shutdown()

    def test_mirror_rejects_mixed_version_results(self):
        from dataclasses import replace

        registry, cache, metrics, engine = self._stack()
        pool = ClusterPool(1, registry, cache=cache, metrics=metrics)
        spec = QuerySpec(graph="g", gamma=2, k=4)
        try:
            pool.warm("g")
            result = pool.execute(engine, spec)
            handle = registry.get("g")
            stale_key = CacheKey.for_spec(spec, handle.version + 1)
            newer = replace(result, graph_version=handle.version)
            before = cache.get(stale_key)
            pool._mirror(stale_key, handle, newer)
            assert cache.get(stale_key) is before is None
        finally:
            pool.shutdown()

    def test_no_segment_leaks_across_mutations_and_compaction(self):
        import glob

        before = set(glob.glob("/dev/shm/repro-csr*"))
        registry, cache, metrics, engine = self._stack()
        pool = ClusterPool(2, registry, cache=cache, metrics=metrics)
        spec = QuerySpec(graph="g", gamma=2, k=4)
        try:
            pool.warm("g")
            pool.execute(engine, spec)
            for i in range(3):
                registry.apply("g", [("insert", 0, 20 + i)])
                pool.execute(engine, QuerySpec(graph="g", gamma=2, k=8 + i))
            registry.compact("g")
            pool.execute(engine, QuerySpec(graph="g", gamma=2, k=16))
        finally:
            pool.shutdown()
        after = set(glob.glob("/dev/shm/repro-csr*"))
        assert after <= before
