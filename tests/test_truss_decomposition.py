"""k-truss machinery vs brute force and networkx."""

from __future__ import annotations

import pytest

from repro.graph.builder import graph_from_arrays
from repro.graph.subgraph import PrefixView
from repro.graph.truss_decomposition import (
    edge_key,
    edge_supports,
    gamma_truss,
    max_truss,
    truss_decomposition,
)
from tests.conftest import random_graph


def k4():
    return graph_from_arrays(4, [(i, j) for i in range(4)
                                 for j in range(i + 1, 4)])


class TestEdgeSupports:
    def test_triangle(self, triangle):
        support = edge_supports(PrefixView.whole(triangle))
        assert support == {(0, 1): 1, (0, 2): 1, (1, 2): 1}

    def test_k4(self):
        support = edge_supports(PrefixView.whole(k4()))
        assert all(s == 2 for s in support.values())
        assert len(support) == 6

    def test_path_has_zero_support(self):
        g = graph_from_arrays(3, [(0, 1), (1, 2)])
        support = edge_supports(PrefixView.whole(g))
        assert all(s == 0 for s in support.values())

    def test_edge_key_canonical(self):
        assert edge_key(5, 2) == (2, 5)
        assert edge_key(2, 5) == (2, 5)


class TestGammaTruss:
    def test_k4_is_4_truss(self):
        adj, support = gamma_truss(PrefixView.whole(k4()), 4)
        assert sum(len(a) for a in adj) == 12  # all 6 edges survive
        assert all(s >= 2 for s in support.values())

    def test_k4_is_not_5_truss(self):
        adj, _ = gamma_truss(PrefixView.whole(k4()), 5)
        assert sum(len(a) for a in adj) == 0

    def test_gamma_2_keeps_everything(self):
        g = graph_from_arrays(3, [(0, 1), (1, 2)])
        adj, _ = gamma_truss(PrefixView.whole(g), 2)
        assert sum(len(a) for a in adj) == 4

    def test_cascade(self):
        # K4 plus a pendant triangle: the pendant dies in the 4-truss.
        g = graph_from_arrays(
            6,
            [(i, j) for i in range(4) for j in range(i + 1, 4)]
            + [(3, 4), (3, 5), (4, 5)],
        )
        adj, support = gamma_truss(PrefixView.whole(g), 4)
        surviving = {
            edge_key(u, v) for u in range(6) for v in adj[u]
        }
        assert surviving == {
            edge_key(i, j) for i in range(4) for j in range(i + 1, 4)
        }

    def test_supports_are_recomputed_within_survivor(self):
        g = graph_from_arrays(
            6,
            [(i, j) for i in range(4) for j in range(i + 1, 4)]
            + [(3, 4), (3, 5), (4, 5)],
        )
        _, support = gamma_truss(PrefixView.whole(g), 4)
        assert all(s >= 2 for s in support.values())


class TestTrussDecomposition:
    def test_k4(self):
        truss = truss_decomposition(k4())
        assert all(t == 4 for t in truss.values())
        assert max_truss(k4()) == 4

    def test_triangle(self, triangle):
        truss = truss_decomposition(triangle)
        assert all(t == 3 for t in truss.values())

    def test_tree_is_2_truss(self):
        g = graph_from_arrays(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        truss = truss_decomposition(g)
        assert all(t == 2 for t in truss.values())

    def test_truss_number_definition(self):
        """truss[e] is the max gamma whose gamma-truss contains e."""
        g = random_graph(14, 0.4, 5)
        truss = truss_decomposition(g)
        for gamma in range(2, max(truss.values()) + 2):
            adj, _ = gamma_truss(PrefixView.whole(g), gamma)
            surviving = {
                edge_key(u, v)
                for u in range(g.num_vertices)
                for v in adj[u]
            }
            expected = {e for e, t in truss.items() if t >= gamma}
            assert surviving == expected

    def test_against_networkx(self):
        nx = pytest.importorskip("networkx")
        g = random_graph(20, 0.3, 11)
        ng = nx.Graph()
        ng.add_nodes_from(range(20))
        ng.add_edges_from(
            (g.label(u), g.label(v)) for u, v in g.iter_edges()
        )
        for k in range(3, 7):
            nx_truss = nx.k_truss(ng, k)
            expected = {
                tuple(sorted((g.rank_of(u), g.rank_of(v))))
                for u, v in nx_truss.edges()
            }
            adj, _ = gamma_truss(PrefixView.whole(g), k)
            got = {
                edge_key(u, v)
                for u in range(20)
                for v in adj[u]
            }
            assert got == expected
