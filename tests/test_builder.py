"""Unit tests for GraphBuilder: tie policies, loops, parallel edges."""

from __future__ import annotations

import pytest

from repro.errors import (
    DuplicateWeightError,
    GraphConstructionError,
    SelfLoopError,
)
from repro.graph.builder import GraphBuilder, graph_from_arrays


class TestBasics:
    def test_empty_graph_rejected(self):
        with pytest.raises(GraphConstructionError):
            GraphBuilder().build()

    def test_single_vertex(self):
        b = GraphBuilder()
        b.add_vertex("only", 1.0)
        g = b.build()
        assert g.num_vertices == 1
        assert g.num_edges == 0

    def test_rank_order_follows_weights(self):
        b = GraphBuilder()
        b.add_vertex("low", 1.0)
        b.add_vertex("high", 9.0)
        b.add_vertex("mid", 5.0)
        g = b.build()
        assert [g.label(r) for r in range(3)] == ["high", "mid", "low"]

    def test_edge_creates_endpoints(self):
        b = GraphBuilder()
        b.add_edge("a", "b")
        g = b.build()
        assert g.num_vertices == 2
        assert g.num_edges == 1

    def test_set_weights_bulk(self):
        b = GraphBuilder()
        b.add_edge("a", "b")
        b.set_weights({"a": 1.0, "b": 2.0})
        g = b.build()
        assert g.rank_of("b") == 0


class TestSelfLoops:
    def test_rejected_by_default(self):
        b = GraphBuilder()
        with pytest.raises(SelfLoopError):
            b.add_edge("a", "a")

    def test_dropped_when_configured(self):
        b = GraphBuilder(drop_self_loops=True)
        b.add_edge("a", "a")
        b.add_edge("a", "b")
        g = b.build()
        assert g.num_edges == 1
        assert b.dropped_self_loops == 1


class TestParallelEdges:
    def test_merged(self):
        b = GraphBuilder()
        b.add_edge("a", "b")
        b.add_edge("b", "a")
        b.add_edge("a", "b")
        g = b.build()
        assert g.num_edges == 1
        assert b.merged_parallel_edges == 2


class TestTiePolicies:
    def test_error_policy(self):
        b = GraphBuilder(ties="error")
        b.add_vertex("a", 1.0)
        b.add_vertex("b", 1.0)
        with pytest.raises(DuplicateWeightError):
            b.build()

    def test_rank_policy_breaks_ties_deterministically(self):
        b = GraphBuilder(ties="rank")
        b.add_vertex("a", 1.0)
        b.add_vertex("b", 1.0)
        b.add_vertex("c", 2.0)
        g = b.build()
        # c first (weight 2), then a before b (insertion order).
        assert [g.label(r) for r in range(3)] == ["c", "a", "b"]
        weights = [g.weight(r) for r in range(3)]
        assert weights == sorted(weights, reverse=True)
        assert len(set(weights)) == 3  # strictly distinct after de-tie

    def test_jitter_policy_produces_distinct_weights(self):
        b = GraphBuilder(ties="jitter")
        for name in "abcd":
            b.add_vertex(name, 7.0)
        g = b.build()
        weights = [g.weight(r) for r in range(4)]
        assert len(set(weights)) == 4

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            GraphBuilder(ties="whatever")

    def test_implicit_weight_vertices_rank_last(self):
        b = GraphBuilder()
        b.add_vertex("heavy", 10.0)
        b.add_edge("heavy", "anon")  # anon has no weight
        g = b.build()
        assert g.rank_of("heavy") == 0
        assert g.rank_of("anon") == 1


class TestGraphFromArrays:
    def test_identity_weights(self):
        g = graph_from_arrays(3, [(0, 1), (1, 2)])
        assert g.rank_of(0) == 0
        assert g.weight(0) == 3.0

    def test_explicit_weights(self):
        g = graph_from_arrays(3, [(0, 1)], weights=[1.0, 3.0, 2.0])
        assert g.rank_of(1) == 0

    def test_weight_length_mismatch(self):
        with pytest.raises(GraphConstructionError):
            graph_from_arrays(3, [], weights=[1.0])

    def test_adjacency_is_sorted_and_mirrored(self):
        g = graph_from_arrays(5, [(0, 4), (1, 4), (2, 4), (3, 4)])
        assert g.neighbors_up(4) == [0, 1, 2, 3]
        for u in range(4):
            assert g.neighbors_down(u) == [4]
