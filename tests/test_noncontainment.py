"""Non-containment community search tests (Section 5.1)."""

from __future__ import annotations

import pytest

from repro import LocalSearchP, top_k_noncontainment_communities
from repro.baselines import forward_noncontainment
from repro.core.count import construct_cvs
from repro.core.noncontainment import noncontainment_communities_from_record
from repro.core.reference import reference_noncontainment_communities
from repro.errors import QueryParameterError
from repro.graph.subgraph import PrefixView
from tests.conftest import random_graph


def pairs(result):
    return [
        (c.influence, frozenset(c.vertex_ranks)) for c in result.communities
    ]


class TestValidation:
    def test_bad_k(self, fig3):
        with pytest.raises(QueryParameterError):
            top_k_noncontainment_communities(fig3, k=0, gamma=3)

    def test_bad_gamma(self, fig3):
        with pytest.raises(QueryParameterError):
            top_k_noncontainment_communities(fig3, k=1, gamma=0)

    def test_bad_delta(self, fig3):
        with pytest.raises(QueryParameterError):
            top_k_noncontainment_communities(fig3, k=1, gamma=3, delta=1.0)

    def test_untracked_record_rejected(self, fig3):
        record = construct_cvs(PrefixView.whole(fig3), 3)
        with pytest.raises(QueryParameterError):
            noncontainment_communities_from_record(fig3, record)


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("gamma", [1, 2, 3])
    def test_matches_reference(self, seed, gamma):
        g = random_graph(16, 0.3, seed, weights="shuffled")
        expected = reference_noncontainment_communities(g, gamma)
        k = max(len(expected), 1)
        result = top_k_noncontainment_communities(g, k=k, gamma=gamma)
        assert pairs(result) == expected

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_forward_nc(self, seed):
        g = random_graph(20, 0.25, seed, weights="shuffled")
        local = top_k_noncontainment_communities(g, k=3, gamma=2)
        global_ = forward_noncontainment(g, 3, 2)
        assert pairs(local) == pairs(global_)

    @pytest.mark.parametrize("seed", range(5))
    def test_pairwise_disjoint(self, seed):
        """Section 5.1: the set of NC communities is disjoint."""
        g = random_graph(20, 0.3, seed, weights="shuffled")
        result = top_k_noncontainment_communities(g, k=50, gamma=2)
        sets = [set(c.vertex_ranks) for c in result.communities]
        for i in range(len(sets)):
            for j in range(i + 1, len(sets)):
                assert sets[i].isdisjoint(sets[j])

    def test_nc_are_subset_of_all_communities(self, fig3):
        from repro.core.reference import reference_communities

        all_pairs = set(reference_communities(fig3, 3))
        result = top_k_noncontainment_communities(fig3, k=10, gamma=3)
        for influence, members in pairs(result):
            assert (influence, members) in all_pairs

    def test_fig3_nc_communities(self, fig3):
        result = top_k_noncontainment_communities(fig3, k=10, gamma=3)
        got = [
            (c.influence, frozenset(c.vertices)) for c in result.communities
        ]
        assert got == [
            (18.0, frozenset({"v3", "v11", "v12", "v20"})),
            (14.0, frozenset({"v1", "v6", "v7", "v16"})),
            (7.0, frozenset({"v0", "v15", "v8", "v21"})),
        ]


class TestProgressiveNC:
    @pytest.mark.parametrize("seed", range(5))
    def test_stream_matches_reference(self, seed):
        g = random_graph(18, 0.3, seed, weights="shuffled")
        got = [
            (c.influence, frozenset(c.vertex_ranks))
            for c in LocalSearchP(g, gamma=2, noncontainment=True).stream()
        ]
        assert got == reference_noncontainment_communities(g, 2)

    def test_stream_decreasing(self, email_graph):
        influences = []
        searcher = LocalSearchP(email_graph, gamma=5, noncontainment=True)
        for community in searcher.stream():
            influences.append(community.influence)
            if len(influences) >= 10:
                break
        assert influences == sorted(influences, reverse=True)

    def test_nc_communities_have_no_children(self, fig3):
        for community in LocalSearchP(
            fig3, gamma=3, noncontainment=True
        ).stream():
            assert community.children == []
            assert community.min_degree() >= 3
