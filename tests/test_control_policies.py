"""Policy units: hysteresis bands, demand-driven replication, admission.

Pure-function tests — signals and state are constructed directly, no
server, no clocks except the injected fakes.  The flap-resistance story
is pinned here: each policy's grow and shrink conditions are separated
by a dead band inside which it proposes nothing.
"""

from __future__ import annotations

import pytest

from repro.control.admission import AdmissionController, TokenBucket
from repro.control.policies import (
    BatchWindowPolicy,
    ControlState,
    Decision,
    PlacementPolicy,
    ReplicaPolicy,
)
from repro.control.signals import ControlSignals, FamilySignal
from repro.errors import AdmissionRejected


def make_signals(**overrides) -> ControlSignals:
    params = dict(
        t=1000.0,
        window_s=10.0,
        qps=5.0,
        coalesce_rate=0.0,
        queue_depth=0,
        queue_depth_peak=0,
        replica_idle_per_s=0.0,
        worker_depths={},
        families={},
        p95_ms=None,
    )
    params.update(overrides)
    return ControlSignals(**params)


def fam(label, queries, p95=None, p95_start=None) -> FamilySignal:
    return FamilySignal(
        label=label,
        graph=label.split("|", 1)[0],
        queries=queries,
        p95_ms=p95,
        p95_start_ms=p95_start,
    )


# ----------------------------------------------------------------------
# batch window
# ----------------------------------------------------------------------
class TestBatchWindowPolicy:
    def test_widens_under_pressure_with_coalescing_evidence(self):
        policy = BatchWindowPolicy()
        signals = make_signals(queue_depth_peak=5, coalesce_rate=0.5)
        [decision] = policy.propose(signals, ControlState(window_s=0.0))
        assert decision.action == "set_window"
        assert decision.after == pytest.approx(0.005)

    def test_never_widens_without_coalescing(self):
        # Deep queue of *distinct* families: a wider window is pure
        # added latency, the policy must leave it alone.
        policy = BatchWindowPolicy()
        signals = make_signals(queue_depth_peak=10, coalesce_rate=0.0)
        assert policy.propose(signals, ControlState(window_s=0.0)) == []

    def test_widen_clamps_at_max_window(self):
        policy = BatchWindowPolicy()
        signals = make_signals(queue_depth_peak=10, coalesce_rate=0.9)
        assert policy.propose(
            signals, ControlState(window_s=policy.max_window_s)
        ) == []
        [decision] = policy.propose(
            signals, ControlState(window_s=policy.max_window_s - 0.001)
        )
        assert decision.after == pytest.approx(policy.max_window_s)

    def test_narrows_when_queue_is_calm(self):
        policy = BatchWindowPolicy()
        signals = make_signals(queue_depth_peak=0, coalesce_rate=0.5)
        [decision] = policy.propose(signals, ControlState(window_s=0.010))
        assert decision.after == pytest.approx(0.005)

    def test_narrows_when_coalescing_stopped_paying(self):
        policy = BatchWindowPolicy()
        signals = make_signals(queue_depth_peak=6, coalesce_rate=0.05)
        [decision] = policy.propose(signals, ControlState(window_s=0.005))
        assert decision.after == 0.0

    def test_dead_band_between_thresholds_proposes_nothing(self):
        # Peak between narrow(1) and widen(4), coalesce between 0.1 and
        # 0.3: inside the hysteresis band nothing moves, either way.
        policy = BatchWindowPolicy()
        signals = make_signals(queue_depth_peak=2, coalesce_rate=0.2)
        assert policy.propose(signals, ControlState(window_s=0.010)) == []
        assert policy.propose(signals, ControlState(window_s=0.0)) == []

    def test_validates_geometry(self):
        with pytest.raises(ValueError):
            BatchWindowPolicy(step_s=0.0)
        with pytest.raises(ValueError):
            BatchWindowPolicy(widen_depth=2, narrow_depth=2)


# ----------------------------------------------------------------------
# replicas
# ----------------------------------------------------------------------
class TestReplicaPolicy:
    def hot_signals(self, hot_queries=90, cold_queries=10, **overrides):
        families = {
            "hot|g3|localsearch-p|d2|auto": fam(
                "hot|g3|localsearch-p|d2|auto", hot_queries
            ),
            "cold|g3|localsearch-p|d2|auto": fam(
                "cold|g3|localsearch-p|d2|auto", cold_queries
            ),
        }
        overrides.setdefault("families", families)
        return make_signals(**overrides)

    def test_grows_hot_graph_one_step_under_pressure(self):
        policy = ReplicaPolicy()
        signals = self.hot_signals(queue_depth_peak=3)
        decisions = policy.propose(signals, ControlState(num_shards=4))
        grow = [d for d in decisions if d.action == "add_replica"]
        assert [d.target for d in grow] == ["hot"]
        assert grow[0].before == 1 and grow[0].after == 2

    def test_no_growth_without_queue_pressure(self):
        # Skewed but under capacity: leave it alone.
        policy = ReplicaPolicy()
        signals = self.hot_signals(queue_depth_peak=0)
        assert policy.propose(signals, ControlState(num_shards=4)) == []

    def test_pool_slot_depth_also_counts_as_pressure(self):
        policy = ReplicaPolicy()
        signals = self.hot_signals(queue_depth_peak=0)
        state = ControlState(num_shards=4, depths=[0, 3, 0, 0])
        assert any(
            d.action == "add_replica"
            for d in policy.propose(signals, state)
        )

    def test_quiet_window_below_min_queries_is_ignored(self):
        policy = ReplicaPolicy(min_window_queries=8)
        signals = self.hot_signals(
            hot_queries=4, cold_queries=2, queue_depth_peak=9
        )
        assert policy.propose(signals, ControlState(num_shards=4)) == []

    def test_shrinks_cooled_graph_with_hysteresis(self):
        policy = ReplicaPolicy()
        state = ControlState(
            num_shards=4, replication={"hot": 4, "cold": 2}
        )
        # hot's share collapsed to 10%: well under the 25% of the 100%
        # its 4 copies imply -> shrink.  cold at 90% stays.
        signals = self.hot_signals(hot_queries=10, cold_queries=90)
        decisions = policy.propose(signals, state)
        shrink = [d for d in decisions if d.action == "remove_replica"]
        assert [d.target for d in shrink] == ["hot"]
        assert shrink[0].after == 3
        # Borderline share (inside the band) shrinks nothing: 4 copies
        # imply 100%, the band floor is 25%, and 40% sits above it.
        borderline = self.hot_signals(hot_queries=40, cold_queries=60)
        assert [
            d
            for d in policy.propose(borderline, state)
            if d.action == "remove_replica" and d.target == "hot"
        ] == []

    def test_never_shrinks_below_one_copy(self):
        policy = ReplicaPolicy()
        state = ControlState(num_shards=4, replication={"hot": 1})
        signals = self.hot_signals(hot_queries=0, cold_queries=100)
        assert all(
            d.action != "remove_replica"
            for d in policy.propose(signals, state)
        )


# ----------------------------------------------------------------------
# placement
# ----------------------------------------------------------------------
class TestPlacementPolicy:
    LABEL = "g|g3|localsearch-p|d2|auto"

    def test_reassigns_regressed_family(self):
        policy = PlacementPolicy()
        signals = make_signals(
            families={self.LABEL: fam(self.LABEL, 10, p95=9.0, p95_start=2.0)}
        )
        state = ControlState(placements={self.LABEL: "worker:1"})
        [decision] = policy.propose(signals, state)
        assert decision.action == "reassign"
        assert decision.target == self.LABEL
        assert decision.before == "worker:1"

    def test_mild_slowdown_below_factor_stays_put(self):
        policy = PlacementPolicy(regression_factor=2.0)
        signals = make_signals(
            families={self.LABEL: fam(self.LABEL, 10, p95=3.5, p95_start=2.0)}
        )
        state = ControlState(placements={self.LABEL: "worker:1"})
        assert policy.propose(signals, state) == []

    def test_reassigns_family_stuck_on_crowded_worker(self):
        policy = PlacementPolicy(imbalance_depth=3)
        signals = make_signals(
            families={self.LABEL: fam(self.LABEL, 10, p95=2.0, p95_start=2.0)}
        )
        state = ControlState(
            placements={self.LABEL: "worker:0"}, depths=[5, 0]
        )
        [decision] = policy.propose(signals, state)
        assert decision.action == "reassign"
        # Same depths, but placed on the idle worker: no move.
        calm = ControlState(
            placements={self.LABEL: "worker:1"}, depths=[5, 0]
        )
        assert policy.propose(signals, calm) == []

    def test_low_traffic_families_are_never_moved(self):
        policy = PlacementPolicy(min_window_queries=4)
        signals = make_signals(
            families={self.LABEL: fam(self.LABEL, 2, p95=50.0, p95_start=1.0)}
        )
        state = ControlState(placements={self.LABEL: "worker:1"})
        assert policy.propose(signals, state) == []

    def test_moves_per_tick_are_capped(self):
        policy = PlacementPolicy(max_moves=2)
        families = {
            f"g{i}|g3|localsearch-p|d2|auto": fam(
                f"g{i}|g3|localsearch-p|d2|auto", 10, p95=9.0, p95_start=1.0
            )
            for i in range(5)
        }
        placements = {label: "worker:0" for label in families}
        decisions = policy.propose(
            make_signals(families=families),
            ControlState(placements=placements),
        )
        assert len(decisions) == 2

    def test_no_placements_means_no_decisions(self):
        policy = PlacementPolicy()
        signals = make_signals(
            families={self.LABEL: fam(self.LABEL, 10, p95=9.0, p95_start=1.0)}
        )
        assert policy.propose(signals, ControlState()) == []


# ----------------------------------------------------------------------
# admission
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_burst_then_refill_at_rate(self):
        bucket = TokenBucket(rate=2.0, burst=3)
        now = 100.0
        assert all(bucket.try_take(now) for _ in range(3))
        assert not bucket.try_take(now)  # burst spent
        assert bucket.try_take(now + 0.5)  # 0.5s * 2/s = 1 token back
        assert not bucket.try_take(now + 0.5)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=2)
        bucket.try_take(0.0)
        for _ in range(2):
            assert bucket.try_take(1000.0)
        assert not bucket.try_take(1000.0)

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)


class RecordingMetrics:
    def __init__(self):
        self.rejections = []

    def observe_admission_rejected(self, tenant):
        self.rejections.append(tenant)


class TestAdmissionController:
    def test_saturation_rejects_everyone_until_drained(self):
        admission = AdmissionController(max_queue_depth=4)
        admission.admit(None, queue_depth=3)
        with pytest.raises(AdmissionRejected) as err:
            admission.admit("acme", queue_depth=4)
        assert err.value.reason == "saturated"
        assert "429" in str(err.value)
        admission.admit("acme", queue_depth=0)  # drained: accepted again

    def test_quota_limits_named_tenant_only(self):
        clock = lambda: 100.0  # noqa: E731 — frozen clock, no refill
        admission = AdmissionController(clock=clock)
        admission.set_quota("acme", rate=1.0, burst=2)
        admission.admit("acme")
        admission.admit("acme")
        with pytest.raises(AdmissionRejected) as err:
            admission.admit("acme")
        assert err.value.reason == "quota"
        # Anonymous and other tenants are untouched by acme's bucket.
        admission.admit(None)
        admission.admit("other")

    def test_default_rate_applies_to_unconfigured_named_tenants(self):
        admission = AdmissionController(
            default_rate=1.0, default_burst=1, clock=lambda: 5.0
        )
        admission.admit("walk-in")
        with pytest.raises(AdmissionRejected):
            admission.admit("walk-in")
        admission.admit(None)  # anonymous traffic is never quota-limited

    def test_rejections_are_counted_locally_and_in_metrics(self):
        metrics = RecordingMetrics()
        admission = AdmissionController(max_queue_depth=1, metrics=metrics)
        for tenant in ("acme", "acme", None):
            with pytest.raises(AdmissionRejected):
                admission.admit(tenant, queue_depth=9)
        assert admission.rejected == {"acme": 2, "-": 1}
        assert metrics.rejections == ["acme", "acme", None]
        description = admission.describe()
        assert description["rejected"] == {"acme": 2, "-": 1}
        assert description["admitted"] == 0

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            AdmissionController(max_queue_depth=0)
        with pytest.raises(ValueError):
            AdmissionController().set_quota("", rate=1.0)


def test_decision_round_trips_to_dict():
    decision = Decision(
        policy="replicas",
        action="add_replica",
        target="wiki",
        before=1,
        after=2,
        reason="demand",
    )
    assert decision.to_dict() == {
        "policy": "replicas",
        "action": "add_replica",
        "target": "wiki",
        "before": 1,
        "after": 2,
        "reason": "demand",
    }
